type scale = [ `Quick | `Full ]

let seeds_list count = List.init count (fun i -> i + 1)

let fault_bound_for n = max 1 (Protocols.Thresholds.max_fault_bound ~n)

(* ------------------------------------------------------------------ *)
(* E0: runtime trace lint — every audited execution must satisfy the   *)
(* engine's structural invariants (FIFO channels, causal depths,       *)
(* provenance, window discipline, decision quorums).                   *)

let e0_trace_lint ?(jobs = 1) ~scale () =
  let seed_count, max_windows, max_steps =
    match scale with
    | `Full -> (20, 2_000, 400_000)
    | `Quick -> (5, 500, 120_000)
  in
  let table =
    Stats.Table.create
      ~title:"E0: runtime trace lint — invariant violations across audited executions"
      ~columns:
        [ "protocol"; "discipline"; "adversary"; "n"; "t"; "quorum"; "fifo";
          "runs"; "violations"; "clean" ]
  in
  let row ~protocol_name ~discipline ~adversary ~n ~t ~quorum ~fifo result =
    Stats.Table.add_row table
      [
        S protocol_name; S discipline; S adversary; I n; I t; I quorum; B fifo;
        I result.Ensemble.runs; I result.Ensemble.lint_violations;
        B (result.Ensemble.lint_violations = 0);
      ]
  in
  (* Windowed variant runs: FIFO holds (windows deliver ascending ids);
     a deciding processor has census >= T1 = n - 2t distinct senders. *)
  let n = 13 in
  let t = fault_bound_for n in
  let quorum = n - (2 * t) in
  let spec =
    {
      Ensemble.n;
      t;
      inputs = Ensemble.split_inputs ~n;
      max_windows;
      max_steps = 0;
      stop = `All_decided;
    }
  in
  List.iter
    (fun (name, strategy) ->
      let result =
        Ensemble.run_windowed ~jobs ~lint:true ~lint_quorum:quorum
          ~protocol:(Protocols.Lewko_variant.protocol ())
          ~strategy ~spec ~seeds:(seeds_list seed_count) ()
      in
      row ~protocol_name:"lewko-variant" ~discipline:"windowed" ~adversary:name
        ~n ~t ~quorum ~fifo:true result)
    [
      ("benign", fun _seed -> Adversary.Benign.windowed ());
      ("balancing", fun _seed -> Adversary.Split_vote.windowed ());
      ("reset-targeted", fun _seed -> Adversary.Reset_storm.target_undecided ());
    ];
  (* Stepwise baselines: Ben-Or needs n - t reports per round, Bracha
     decides at 2t + 1 readies.  The echo chamber defers messages, so
     its channels legitimately reorder: FIFO is waived for that row. *)
  let stepwise protocol_name protocol ~n ~t ~quorum ~fifo (name, strategy) =
    let spec =
      {
        Ensemble.n;
        t;
        inputs = Ensemble.split_inputs ~n;
        max_windows = 0;
        max_steps;
        stop = `First_decision;
      }
    in
    let result =
      Ensemble.run_stepwise ~jobs ~lint:true ~lint_fifo:fifo ~lint_quorum:quorum
        ~protocol ~strategy ~spec ~seeds:(seeds_list seed_count) ()
    in
    row ~protocol_name ~discipline:"stepwise" ~adversary:name ~n ~t ~quorum
      ~fifo result
  in
  stepwise "ben-or" (Protocols.Ben_or.protocol ()) ~n:7 ~t:3 ~quorum:4
    ~fifo:true
    ("balancing", fun _seed -> Adversary.Split_vote.stepwise ());
  stepwise "ben-or" (Protocols.Ben_or.protocol ()) ~n:7 ~t:3 ~quorum:4
    ~fifo:true
    ("crash-late", fun _seed -> Adversary.Crash.before_decision ());
  stepwise "bracha" (Protocols.Bracha.protocol ()) ~n:7 ~t:2 ~quorum:5
    ~fifo:true
    ("balancing", fun _seed -> Adversary.Split_vote.stepwise ());
  stepwise "bracha" (Protocols.Bracha.protocol ()) ~n:7 ~t:2 ~quorum:5
    ~fifo:false
    ("echo-chamber", fun _seed -> Adversary.Echo_chamber.stepwise ());
  table

(* ------------------------------------------------------------------ *)
(* E1: Theorem 4 correctness/termination matrix.                       *)

let e1_adversaries :
    (string * (int -> ('s, 'm) Adversary.Strategy.windowed)) list =
  [
    ("benign", fun _seed -> Adversary.Benign.windowed ());
    ("silence-first-t", fun _seed -> Adversary.Silence.first_t);
    ("silence-last-t", fun _seed -> Adversary.Silence.last_t);
    ( "silence-rotating",
      fun _seed config ->
        Adversary.Silence.rotating ~period:3
          ~count:(Dsim.Engine.fault_bound config)
          config );
    ("reset-rotating", fun _seed -> Adversary.Reset_storm.rotating ());
    ("reset-random", fun seed -> Adversary.Reset_storm.random ~seed ());
    ("reset-targeted", fun _seed -> Adversary.Reset_storm.target_undecided ());
    ("balancing", fun _seed -> Adversary.Split_vote.windowed ());
    ("balance+reset", fun _seed -> Adversary.Split_vote.windowed_with_resets ());
    ("reset+silence", fun seed -> Adversary.Reset_storm.with_silence ~seed ());
    ("split-brain", fun _seed -> Adversary.Split_brain.windowed ());
  ]

let e1_theorem4_matrix ?(jobs = 1) ~scale () =
  let ns, seed_count, max_windows =
    match scale with
    | `Full -> ([ 12; 18; 24; 30 ], 120, 20_000)
    | `Quick -> ([ 12; 18 ], 15, 20_000)
  in
  let table =
    Stats.Table.create ~title:"E1: Theorem 4 — variant algorithm vs strongly adaptive adversaries"
      ~columns:
        [ "n"; "t"; "adversary"; "runs"; "agreement"; "validity"; "termination";
          "mean windows"; "mean resets" ]
  in
  List.iter
    (fun n ->
      let t = fault_bound_for n in
      let spec =
        {
          Ensemble.n;
          t;
          inputs = Ensemble.split_inputs ~n;
          max_windows;
          max_steps = 0;
          stop = `All_decided;
        }
      in
      List.iter
        (fun (name, strategy) ->
          let result =
            Ensemble.run_windowed ~jobs ~protocol:(Protocols.Lewko_variant.protocol ())
              ~strategy ~spec ~seeds:(seeds_list seed_count) ()
          in
          Stats.Table.add_row table
            [
              I n; I t; S name; I result.Ensemble.runs;
              Pct (Ensemble.agreement_rate result);
              Pct (Ensemble.validity_rate result);
              Pct (Ensemble.termination_rate result);
              F (Stats.Summary.mean result.Ensemble.windows);
              F (Stats.Summary.mean result.Ensemble.total_resets);
            ])
        e1_adversaries)
    ns;
  table

(* ------------------------------------------------------------------ *)
(* E2: exponential running time of the variant under balancing.        *)

let e2_spec ~n ~max_windows =
  {
    Ensemble.n;
    t = 1;
    inputs = Ensemble.split_inputs ~n;
    max_windows;
    max_steps = 0;
    stop = `First_decision;
  }

(* Analytic per-window escape probability: the balancing adversary
   fails only when the census majority reaches T3 + t. *)
let escape_probability ~n ~t =
  let thresholds = Protocols.Thresholds.default ~n ~t in
  let threshold = Adversary.Split_vote.escape_threshold ~n ~t ~thresholds in
  2.0 *. Stats.Tail.majority_success_probability ~n ~threshold

let e2_exponential_variant ?(jobs = 1) ~scale () =
  let ns, seed_count =
    match scale with
    | `Full -> ([ 7; 9; 11; 13; 15; 17 ], 200)
    | `Quick -> ([ 7; 9; 11 ], 30)
  in
  let table =
    Stats.Table.create ~title:"E2: variant under balancing adversary — windows to decision vs n (t = 1)"
      ~columns:
        [ "n"; "runs"; "mean windows"; "ci95"; "p90"; "analytic 1/p"; "log2 mean" ]
  in
  let points = ref [] in
  List.iter
    (fun n ->
      let spec = e2_spec ~n ~max_windows:400_000 in
      let result =
        Ensemble.run_windowed ~jobs ~protocol:(Protocols.Lewko_variant.protocol ())
          ~strategy:(fun _ -> Adversary.Split_vote.windowed ())
          ~spec ~seeds:(seeds_list seed_count) ()
      in
      let mean = Stats.Summary.mean result.Ensemble.windows in
      points := (float_of_int n, mean) :: !points;
      let p90 =
        if Stats.Histogram.count result.Ensemble.window_histogram = 0 then 0
        else Stats.Histogram.quantile result.Ensemble.window_histogram 0.9
      in
      Stats.Table.add_row table
        [
          I n; I result.Ensemble.runs; F mean;
          F (Stats.Summary.ci95_half_width result.Ensemble.windows);
          I p90;
          F (1.0 /. escape_probability ~n ~t:1);
          F (log mean /. log 2.0);
        ])
    ns;
  let fit = Stats.Regression.log2_linear (List.rev !points) in
  (table, fit)

let e2_survival ?(jobs = 1) ~scale () =
  let n, seed_count = match scale with `Full -> (13, 400) | `Quick -> (9, 60) in
  let spec = e2_spec ~n ~max_windows:400_000 in
  let result =
    Ensemble.run_windowed ~jobs ~protocol:(Protocols.Lewko_variant.protocol ())
      ~strategy:(fun _ -> Adversary.Split_vote.windowed ())
      ~spec ~seeds:(seeds_list seed_count) ()
  in
  let table =
    Stats.Table.create
      ~title:(Printf.sprintf "E2 (series): survival P[windows > k], n = %d, t = 1" n)
      ~columns:[ "k"; "P[windows > k]" ]
  in
  let survival = Stats.Histogram.survival result.Ensemble.window_histogram in
  (* Thin the series to at most ~20 rows. *)
  let len = List.length survival in
  let stride = max 1 (len / 20) in
  List.iteri
    (fun i (k, p) -> if i mod stride = 0 || i = len - 1 then
        Stats.Table.add_row table [ I k; F p ])
    survival;
  table

(* ------------------------------------------------------------------ *)
(* E3: baselines under balancing schedules.                            *)

let e3_baselines ?(jobs = 1) ~scale () =
  let ben_or_ns, bracha_ns, seed_count =
    match scale with
    | `Full -> ([ 5; 7; 9; 11 ], [ 4; 7; 10 ], 80)
    | `Quick -> ([ 5; 7 ], [ 4; 7 ], 15)
  in
  let table =
    Stats.Table.create ~title:"E3: baselines under adversarial schedules — growth with n"
      ~columns:
        [ "protocol"; "model"; "strategy"; "n"; "t"; "runs"; "termination";
          "mean steps"; "mean chain length" ]
  in
  let cell protocol model strategy_name strategy ~n ~t =
    let spec =
      {
        Ensemble.n;
        t;
        inputs = Ensemble.split_inputs ~n;
        max_windows = 0;
        max_steps = 6_000_000;
        stop = `First_decision;
      }
    in
    let result = Ensemble.run_stepwise ~jobs ~protocol ~strategy ~spec ~seeds:(seeds_list seed_count) () in
    Stats.Table.add_row table
      [
        S protocol.Dsim.Protocol.name; S model; S strategy_name; I n; I t;
        I result.Ensemble.runs;
        Pct (Ensemble.termination_rate result);
        F (Stats.Summary.mean result.Ensemble.steps);
        F (Stats.Summary.mean result.Ensemble.chain_depth);
      ]
  in
  List.iter
    (fun n ->
      let t = max 1 ((n - 1) / 2) in
      cell (Protocols.Ben_or.protocol ()) "crash" "balancing"
        (fun _ -> Adversary.Split_vote.stepwise ())
        ~n ~t)
    ben_or_ns;
  List.iter
    (fun n ->
      let t = max 1 ((n - 1) / 3) in
      cell (Protocols.Bracha.protocol ()) "byzantine" "balancing"
        (fun _ -> Adversary.Split_vote.stepwise ())
        ~n ~t;
      cell (Protocols.Bracha.protocol ()) "byzantine" "echo-chamber"
        (fun _ -> Adversary.Echo_chamber.stepwise ())
        ~n ~t)
    bracha_ns;
  table

(* ------------------------------------------------------------------ *)
(* E4: Talagrand / Lemma 9 numerics.                                   *)

let e4_talagrand ~scale =
  let configs =
    match scale with
    | `Full ->
        [ (16, `Exact); (20, `Exact); (64, `Mc); (128, `Mc) ]
    | `Quick -> [ (16, `Exact); (64, `Mc) ]
  in
  let table =
    Stats.Table.create ~title:"E4: Lemma 9 — P(A)(1 - P(B(A,d))) vs exp(-d^2/4n)"
      ~columns:[ "n"; "mode"; "set A"; "d"; "P[A]"; "P[B(A,d)]"; "lhs"; "bound"; "holds" ]
  in
  List.iter
    (fun (n, mode) ->
      let space = Lowerbound.Product.uniform_bits ~n in
      let sets =
        [
          (Printf.sprintf "weight>=%d" ((n / 2) + (n / 8)),
           Lowerbound.Talagrand.Weight_ge ((n / 2) + (n / 8)));
          (Printf.sprintf "weight>=%d" ((3 * n) / 4),
           Lowerbound.Talagrand.Weight_ge ((3 * n) / 4));
          ("ball(0,n/8)",
           Lowerbound.Talagrand.Ball { center = Array.make n 0; radius = n / 8 });
        ]
      in
      let ds = [ n / 8; n / 4; (3 * n) / 8; n / 2 ] in
      List.iter
        (fun (set_name, set) ->
          List.iter
            (fun d ->
              let samples = match mode with `Exact -> 1 | `Mc -> 200_000 in
              let check =
                Lowerbound.Talagrand.check ~samples ~seed:(n + d) space set ~d
              in
              Stats.Table.add_row table
                [
                  I n;
                  S (match mode with `Exact -> "exact" | `Mc -> "mc");
                  S set_name; I d;
                  F check.Lowerbound.Talagrand.p_a;
                  F check.Lowerbound.Talagrand.p_expansion;
                  F check.Lowerbound.Talagrand.lhs;
                  F check.Lowerbound.Talagrand.bound;
                  B check.Lowerbound.Talagrand.holds;
                ])
            ds)
        sets)
    configs;
  table

(* ------------------------------------------------------------------ *)
(* E5: Lemma 14 interpolation sweep.                                   *)

let e5_interpolation ~scale =
  (* Parameters chosen so eta is meaningfully small and the crossing
     index is interior: t just under the set gap, strongly biased
     endpoint distributions. *)
  let n, samples = match scale with `Full -> (64, 60_000) | `Quick -> (48, 20_000) in
  let k0 = (n / 2) - (n / 6) and k1 = (n / 2) + (n / 6) in
  let t = k1 - k0 - 1 in
  let z0 = Lowerbound.Talagrand.Weight_le k0 in
  let z1 = Lowerbound.Talagrand.Weight_ge k1 in
  let pi0 = Lowerbound.Product.bernoulli (Array.make n 0.2) in
  let pi_n = Lowerbound.Product.bernoulli (Array.make n 0.8) in
  let result = Lowerbound.Interpolation.sweep ~samples ~pi0 ~pi_n ~z0 ~z1 ~t () in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E5: Lemma 14 hybrids (n = %d, t = %d, Z0 = weight<=%d, Z1 = weight>=%d, eta = %.3f, j* = %d, conclusion holds = %b)"
           n t k0 k1 result.Lowerbound.Interpolation.eta
           result.Lowerbound.Interpolation.j_star
           result.Lowerbound.Interpolation.conclusion_holds)
      ~columns:[ "j"; "P_pij[Z0]"; "P_pij[Z1]" ]
  in
  let stride = max 1 (n / 10) in
  List.iter
    (fun point ->
      let j = point.Lowerbound.Interpolation.j in
      if j mod stride = 0 || j = result.Lowerbound.Interpolation.j_star || j = n then
        Stats.Table.add_row table
          [
            I j;
            F point.Lowerbound.Interpolation.p_z0;
            F point.Lowerbound.Interpolation.p_z1;
          ])
    result.Lowerbound.Interpolation.curve;
  table

(* ------------------------------------------------------------------ *)
(* E5b: Z^k probes on real configurations.                             *)

let e5b_zk_sets ~scale =
  let separations, member_samples =
    match scale with
    | `Full -> ([ (7, 1); (13, 2) ], 12)
    | `Quick -> ([ (7, 1) ], 6)
  in
  let table =
    Stats.Table.create ~title:"E5b: Z^k probes on the variant algorithm"
      ~columns:[ "probe"; "n"; "t"; "detail"; "result" ]
  in
  let protocol = Protocols.Lewko_variant.protocol () in
  let describe sep =
    Printf.sprintf "min distance %s over %d pairs (bound t = %d)"
      (if sep.Lowerbound.Zk_sets.min_distance = max_int then "-"
       else string_of_int sep.Lowerbound.Zk_sets.min_distance)
      sep.Lowerbound.Zk_sets.pairs_checked sep.Lowerbound.Zk_sets.bound
  in
  List.iter
    (fun (n, t) ->
      let sep =
        Lowerbound.Zk_sets.estimate_z0_separation ~protocol ~n ~t ~runs:60 ~seed:17
      in
      Stats.Table.add_row table
        [
          S "Z0 separation (Lemma 11)"; I n; I t; S (describe sep);
          B sep.Lowerbound.Zk_sets.holds;
        ])
    separations;
  (* Lemma 13 at level k = 1: sampled Z^1 buckets stay separated. *)
  let sep1 =
    Lowerbound.Zk_sets.estimate_zk_separation ~protocol ~n:7 ~t:1 ~k:1 ~runs:30
      ~samples:member_samples ~seed:29
  in
  Stats.Table.add_row table
    [
      S "Z1 separation (Lemma 13)"; I 7; I 1; S (describe sep1);
      B sep1.Lowerbound.Zk_sets.holds;
    ];
  (* Z^1 membership of initial configurations. *)
  let n = 7 and t = 1 in
  let tau = Stats.Tail.tau ~n ~t in
  let rng = Prng.Stream.root 23 in
  let membership inputs value =
    let config =
      Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs ~seed:5 ()
    in
    Lowerbound.Zk_sets.member config ~k:1 ~value ~samples:member_samples ~tau ~rng
  in
  let all_zero = Array.make n false and all_one = Array.make n true in
  let split = Array.init n (fun i -> i mod 2 = 0) in
  let check name inputs value expected =
    let got = membership inputs value in
    Stats.Table.add_row table
      [
        S "Z^1 membership"; I n; I t;
        S
          (Printf.sprintf "%s in Z^1_%d: got %b, expect %b" name
             (if value then 1 else 0)
             got expected);
        B (got = expected);
      ]
  in
  check "all-zero inputs" all_zero false true;
  check "all-zero inputs" all_zero true false;
  check "all-one inputs" all_one true true;
  check "all-one inputs" all_one false false;
  check "split inputs" split false false;
  check "split inputs" split true false;
  table

(* ------------------------------------------------------------------ *)
(* E6: Theorem 5 constants.                                            *)

let e6_theory_constants ~scale =
  let cs = [ 1.0 /. 6.0; 1.0 /. 12.0; 1.0 /. 24.0 ] in
  let ns =
    match scale with
    | `Full -> [ 64; 256; 1024; 4096; 16384 ]
    | `Quick -> [ 64; 1024 ]
  in
  let table =
    Stats.Table.create
      ~title:"E6: Theorem 5 constants — guaranteed windows E(n) = C e^{alpha n}"
      ~columns:
        [ "c"; "alpha"; "crossover n"; "n"; "log2 E(n)"; "success prob >="; "(3) holds" ]
  in
  List.iter
    (fun c ->
      let k = Lowerbound.Theory.derive ~c in
      List.iter
        (fun n ->
          Stats.Table.add_row table
            [
              F c; F k.Lowerbound.Theory.alpha;
              F (Lowerbound.Theory.crossover_n k);
              I n;
              F (Lowerbound.Theory.log_windows k ~n /. log 2.0);
              F (Lowerbound.Theory.success_probability_lower_bound k ~n);
              B (Lowerbound.Theory.exponent_inequality_holds k ~n);
            ])
        ns)
    cs;
  table

(* ------------------------------------------------------------------ *)
(* E7: reset resilience.                                               *)

let e7_reset_resilience ?(jobs = 1) ~scale () =
  let seed_count = match scale with `Full -> 100 | `Quick -> 15 in
  let table =
    Stats.Table.create
      ~title:"E7: cumulative resets absorbed (t per window) while staying correct"
      ~columns:
        [ "n"; "t"; "adversary"; "runs"; "agreement"; "termination"; "mean windows";
          "mean total resets"; "resets / t" ]
  in
  let strategies =
    [
      ("reset-rotating", fun _seed -> Adversary.Reset_storm.rotating ());
      ("reset-random", fun seed -> Adversary.Reset_storm.random ~seed ());
      ("reset-targeted", fun _seed -> Adversary.Reset_storm.target_undecided ());
      ("balance+reset", fun _seed -> Adversary.Split_vote.windowed_with_resets ());
    ]
  in
  List.iter
    (fun (n, t) ->
      let spec =
        {
          Ensemble.n;
          t;
          inputs = Ensemble.split_inputs ~n;
          max_windows = 50_000;
          max_steps = 0;
          stop = `All_decided;
        }
      in
      List.iter
        (fun (name, strategy) ->
          let result =
            Ensemble.run_windowed ~jobs ~protocol:(Protocols.Lewko_variant.protocol ())
              ~strategy ~spec ~seeds:(seeds_list seed_count) ()
          in
          let mean_resets = Stats.Summary.mean result.Ensemble.total_resets in
          Stats.Table.add_row table
            [
              I n; I t; S name; I result.Ensemble.runs;
              Pct (Ensemble.agreement_rate result);
              Pct (Ensemble.termination_rate result);
              F (Stats.Summary.mean result.Ensemble.windows);
              F mean_resets;
              F (mean_resets /. float_of_int t);
            ])
        strategies)
    [ (13, 2); (19, 3) ];
  table

(* ------------------------------------------------------------------ *)
(* E8: forgetful / fully-communicative class and chain lengths.        *)

let e8_forgetful_class ?(jobs = 1) ~scale () =
  let seeds, windows_per_run, chain_ns, chain_seeds =
    match scale with
    | `Full -> ([ 1; 2; 3; 4; 5 ], 25, [ 5; 7; 9; 11 ], 60)
    | `Quick -> ([ 1; 2 ], 12, [ 5; 7 ], 12)
  in
  let table =
    Stats.Table.create ~title:"E8: Definitions 15/16 classification and Theorem 17 setting"
      ~columns:[ "row"; "protocol"; "detail"; "ok" ]
  in
  let classify name protocol ~n ~t =
    let report = Protocols.Classifier.check protocol ~n ~t ~seeds ~windows_per_run in
    let show verdict =
      match verdict with
      | Protocols.Classifier.No_counterexample k ->
          Printf.sprintf "no counterexample (%d checks)" k
      | Protocols.Classifier.Counterexample _ -> "counterexample found"
    in
    Stats.Table.add_row table
      [
        S "class"; S name;
        S
          (Printf.sprintf "forgetful: declared %b, %s; fully-comm: declared %b, %s"
             report.Protocols.Classifier.declared_forgetful
             (show report.Protocols.Classifier.forgetful)
             report.Protocols.Classifier.declared_fully_communicative
             (show report.Protocols.Classifier.fully_communicative));
        B (Protocols.Classifier.consistent report);
      ]
  in
  classify "lewko-variant" (Protocols.Lewko_variant.protocol ()) ~n:13 ~t:2;
  classify "ben-or" (Protocols.Ben_or.protocol ()) ~n:9 ~t:2;
  classify "bracha" (Protocols.Bracha.protocol ()) ~n:7 ~t:2;
  (* Chain-length growth for the forgetful, fully communicative Ben-Or
     under crash balancing — the quantity Theorem 17 lower-bounds. *)
  List.iter
    (fun n ->
      let t = max 1 ((n - 1) / 2) in
      let spec =
        {
          Ensemble.n;
          t;
          inputs = Ensemble.split_inputs ~n;
          max_windows = 0;
          max_steps = 6_000_000;
          stop = `First_decision;
        }
      in
      let result =
        Ensemble.run_stepwise ~jobs ~protocol:(Protocols.Ben_or.protocol ())
          ~strategy:(fun _ -> Adversary.Split_vote.stepwise ())
          ~spec ~seeds:(seeds_list chain_seeds) ()
      in
      Stats.Table.add_row table
        [
          S "chain-length"; S "ben-or";
          S
            (Printf.sprintf "n=%d t=%d mean chain %.1f (term %.0f%%)" n t
               (Stats.Summary.mean result.Ensemble.chain_depth)
               (100.0 *. Ensemble.termination_rate result));
          B (Ensemble.agreement_rate result = 1.0);
        ])
    chain_ns;
  table

(* ------------------------------------------------------------------ *)
(* E9: committee algorithm contrast.                                   *)

let e9_committee ~scale =
  let ns, trials =
    match scale with
    | `Full -> ([ 64; 128; 256; 512 ], 60)
    | `Quick -> ([ 64; 128 ], 12)
  in
  let fractions = [ 0.0; 0.1; 0.2; 0.3 ] in
  let table =
    Stats.Table.create
      ~title:"E9: committee algorithm — polylog rounds, non-zero error, adaptive attack"
      ~columns:
        [ "n"; "inputs"; "corrupt frac"; "adaptive"; "trials"; "mean rounds";
          "mean levels"; "hijack rate"; "invalid rate" ]
  in
  let run_cell ~n ~inputs_kind ~fraction ~adaptive =
    let rounds = ref Stats.Summary.empty and levels = ref Stats.Summary.empty in
    let hijacks = ref 0 and invalids = ref 0 in
    for trial = 1 to trials do
      let seed = (n * 1000) + trial in
      let rng = Prng.Stream.root seed in
      let corrupt_count = int_of_float (fraction *. float_of_int n) in
      let corrupt = Prng.Stream.sample_without_replacement rng corrupt_count n in
      let inputs =
        match inputs_kind with
        | `Split -> Array.init n (fun i -> (i + trial) mod 2 = 0)
        | `Unanimous -> Array.make n (trial mod 2 = 0)
      in
      let params =
        { (Protocols.Committee.default_params ~n ~seed) with adaptive_attack = adaptive }
      in
      let report = Protocols.Committee.run params ~n ~corrupt ~inputs in
      rounds := Stats.Summary.add_int !rounds report.Protocols.Committee.rounds;
      levels := Stats.Summary.add_int !levels report.Protocols.Committee.levels;
      if report.Protocols.Committee.hijacked then incr hijacks;
      if not report.Protocols.Committee.valid then incr invalids
    done;
    Stats.Table.add_row table
      [
        I n;
        S (match inputs_kind with `Split -> "split" | `Unanimous -> "unanimous");
        Pct fraction; B adaptive; I trials;
        F (Stats.Summary.mean !rounds);
        F (Stats.Summary.mean !levels);
        Pct (float_of_int !hijacks /. float_of_int trials);
        Pct (float_of_int !invalids /. float_of_int trials);
      ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun fraction -> run_cell ~n ~inputs_kind:`Split ~fraction ~adaptive:false)
        fractions;
      (* Unanimous inputs: a hijacked final committee now produces an
         outright invalid decision, not merely a dictated one. *)
      run_cell ~n ~inputs_kind:`Unanimous ~fraction:0.2 ~adaptive:false;
      run_cell ~n ~inputs_kind:`Split ~fraction:0.1 ~adaptive:true;
      run_cell ~n ~inputs_kind:`Unanimous ~fraction:0.1 ~adaptive:true)
    ns;
  table

(* ------------------------------------------------------------------ *)
(* E10: ablations — threshold choice and adversary strength.           *)

let e10_ablations ?(jobs = 1) ~scale () =
  let seed_count = match scale with `Full -> 150 | `Quick -> 20 in
  let table =
    Stats.Table.create
      ~title:"E10: ablations — thresholds (T2 = T1 vs relaxed) and adversary strength"
      ~columns:
        [ "ablation"; "n"; "t"; "setting"; "runs"; "agreement"; "termination";
          "mean windows" ]
  in
  let run_cell ~ablation ~n ~t ~setting ~protocol ~strategy =
    let spec =
      {
        Ensemble.n;
        t;
        inputs = Ensemble.split_inputs ~n;
        max_windows = 100_000;
        max_steps = 0;
        stop = `All_decided;
      }
    in
    let result = Ensemble.run_windowed ~jobs ~protocol ~strategy ~spec ~seeds:(seeds_list seed_count) () in
    Stats.Table.add_row table
      [
        S ablation; I n; I t; S setting; I result.Ensemble.runs;
        Pct (Ensemble.agreement_rate result);
        Pct (Ensemble.termination_rate result);
        F (Stats.Summary.mean result.Ensemble.windows);
      ]
  in
  (* Threshold ablation: the paper notes that a smaller T2 (possible
     when t is small) improves running time.  The relaxed triple also
     lowers T3, which weakens the balancing adversary's grip. *)
  List.iter
    (fun (n, t) ->
      run_cell ~ablation:"thresholds" ~n ~t ~setting:"default (T2 = T1 = n-2t)"
        ~protocol:(Protocols.Lewko_variant.protocol ())
        ~strategy:(fun _ -> Adversary.Split_vote.windowed ());
      run_cell ~ablation:"thresholds" ~n ~t ~setting:"relaxed (T3 = n/2+1, T2 = T3+t)"
        ~protocol:
          (Protocols.Lewko_variant.protocol
             ~thresholds:(Protocols.Thresholds.relaxed ~n ~t) ())
        ~strategy:(fun _ -> Adversary.Split_vote.windowed ()))
    (* Small t relative to n: that is where the relaxed triple actually
       differs (at maximal t, n - 3t is already a bare majority). *)
    [ (13, 1); (19, 2) ];
  (* Adversary ablation: the exponential effect needs an adversary —
     random silencing of t senders is *not* adversarial enough. *)
  let random_silencing seed =
    let rng = Prng.Stream.root seed in
    fun config ->
      let n = Dsim.Engine.n config and t = Dsim.Engine.fault_bound config in
      let silenced = Prng.Stream.sample_without_replacement rng t n in
      (* Through the shared memo like the other windowed adversaries:
         fresh samples miss it, but repeated draws of the same set (small
         binom(n, t)) reuse the window object and fuse in the engine. *)
      Some (Adversary.Strategy.cached_uniform ~n ~silenced ())
  in
  List.iter
    (fun (setting, strategy) ->
      run_cell ~ablation:"adversary" ~n:13 ~t:2 ~setting
        ~protocol:(Protocols.Lewko_variant.protocol ())
        ~strategy)
    [
      ("benign", fun _ -> Adversary.Benign.windowed ());
      ("random silencing", random_silencing);
      ("balancing", fun _ -> Adversary.Split_vote.windowed ());
      ("balancing + resets", fun _ -> Adversary.Split_vote.windowed_with_resets ());
      ("lookahead (proof-style)",
       fun seed -> Adversary.Lookahead.windowed ~samples:4 ~horizon:3 ~seed ());
    ];
  table

(* ------------------------------------------------------------------ *)
(* E11: the synchronous coin-killing game (Bar-Joseph & Ben-Or [6]).   *)

let e11_synchronous ~scale =
  let ns, seed_count =
    match scale with
    | `Full -> ([ 32; 64; 128; 256 ], 150)
    | `Quick -> ([ 32; 64 ], 25)
  in
  let table =
    Stats.Table.create
      ~title:
        "E11: synchronous consensus vs adaptive crash adversary — rounds track t/sqrt(n log n) ([6])"
      ~columns:
        [ "n"; "t"; "adversary"; "runs"; "agreement"; "termination"; "mean rounds";
          "mean crashes used"; "rounds / (t/sqrt(n ln n))" ]
  in
  let run_cell ~n ~t ~name ~adversary =
    let rounds = ref Stats.Summary.empty and crashes = ref Stats.Summary.empty in
    let agreements = ref 0 and terminations = ref 0 in
    for seed = 1 to seed_count do
      let inputs = Array.init n (fun i -> (i + seed) mod 2 = 0) in
      let outcome =
        Syncsim.Sync_engine.run ~protocol:Syncsim.Sync_consensus.protocol ~n ~t ~inputs
          ~seed ~adversary:(adversary ()) ~max_rounds:100_000
      in
      rounds := Stats.Summary.add_int !rounds outcome.Syncsim.Sync_engine.rounds;
      crashes := Stats.Summary.add_int !crashes outcome.Syncsim.Sync_engine.crashes_used;
      if not outcome.Syncsim.Sync_engine.conflict then incr agreements;
      if outcome.Syncsim.Sync_engine.terminated then incr terminations
    done;
    let theory = float_of_int t /. sqrt (float_of_int n *. log (float_of_int n)) in
    Stats.Table.add_row table
      [
        I n; I t; S name; I seed_count;
        Pct (float_of_int !agreements /. float_of_int seed_count);
        Pct (float_of_int !terminations /. float_of_int seed_count);
        F (Stats.Summary.mean !rounds);
        F (Stats.Summary.mean !crashes);
        F (Stats.Summary.mean !rounds /. theory);
      ]
  in
  List.iter
    (fun n ->
      let t = n / 4 in
      run_cell ~n ~t ~name:"none" ~adversary:(fun () -> Syncsim.Sync_engine.no_faults);
      run_cell ~n ~t ~name:"crash-early" ~adversary:Syncsim.Sync_adversary.crash_early;
      run_cell ~n ~t ~name:"coin-killing" ~adversary:Syncsim.Sync_adversary.balancing)
    ns;
  table

(* ------------------------------------------------------------------ *)
(* E12: shared-memory counter-race coin (Aspnes [3]; Attiya-Censor [5]) *)

let e12_shared_memory ~scale =
  let ns, seed_count =
    match scale with
    | `Full -> ([ 8; 16; 32; 64 ], 100)
    | `Quick -> ([ 8; 16 ], 20)
  in
  let table =
    Stats.Table.create
      ~title:
        "E12: shared-memory counter-race coin — total steps scale as n^2 ([3,5]), agreement despite scheduling"
      ~columns:
        [ "n"; "scheduler"; "runs"; "agreement"; "mean total steps"; "steps / n^2";
          "mean |sum| peak" ]
  in
  let run_cell ~n ~name ~scheduler =
    let steps = ref Stats.Summary.empty and peaks = ref Stats.Summary.empty in
    let agreements = ref 0 in
    for seed = 1 to seed_count do
      let result =
        Shmem.Shared_coin.run ~n ~threshold_factor:1.0 ~seed ~scheduler
          ~max_steps:(3_000 * n * n) ()
      in
      steps := Stats.Summary.add_int !steps result.Shmem.Shared_coin.total_steps;
      peaks := Stats.Summary.add_int !peaks result.Shmem.Shared_coin.max_abs_sum;
      if result.Shmem.Shared_coin.agreed then incr agreements
    done;
    Stats.Table.add_row table
      [
        I n; S name; I seed_count;
        Pct (float_of_int !agreements /. float_of_int seed_count);
        F (Stats.Summary.mean !steps);
        F (Stats.Summary.mean !steps /. float_of_int (n * n));
        F (Stats.Summary.mean !peaks);
      ]
  in
  List.iter
    (fun n ->
      run_cell ~n ~name:"round-robin" ~scheduler:Shmem.Shared_coin.Round_robin;
      run_cell ~n ~name:"random" ~scheduler:(Shmem.Shared_coin.Random 7);
      run_cell ~n ~name:"stalling" ~scheduler:Shmem.Shared_coin.Stalling)
    ns;
  table

(* ------------------------------------------------------------------ *)
(* E15: shared-memory consensus over the counter-race coin ([3,5]).    *)

let e15_sm_consensus ~scale =
  let ns, seed_count =
    match scale with
    | `Full -> ([ 8; 16; 32 ], 80)
    | `Quick -> ([ 8; 16 ], 15)
  in
  let table =
    Stats.Table.create
      ~title:
        "E15: wait-free shared-memory consensus (Aspnes-Herlihy rounds over the counter-race coin)"
      ~columns:
        [ "n"; "scheduler"; "runs"; "agreement"; "validity"; "termination";
          "mean rounds"; "mean coin rounds"; "mean total steps"; "steps / n^2" ]
  in
  let run_cell ~n ~name ~scheduler =
    let rounds = ref Stats.Summary.empty
    and coins = ref Stats.Summary.empty
    and steps = ref Stats.Summary.empty in
    let agreements = ref 0 and validities = ref 0 and terminations = ref 0 in
    for seed = 1 to seed_count do
      let inputs = Array.init n (fun i -> (i + seed) mod 2 = 0) in
      let r =
        Shmem.Sm_consensus.run ~n ~inputs ~seed ~scheduler
          ~max_steps:(50_000 * n * n) ()
      in
      rounds := Stats.Summary.add_int !rounds r.Shmem.Sm_consensus.rounds;
      coins := Stats.Summary.add_int !coins r.Shmem.Sm_consensus.coin_rounds;
      steps := Stats.Summary.add_int !steps r.Shmem.Sm_consensus.total_steps;
      if r.Shmem.Sm_consensus.agreed then incr agreements;
      if r.Shmem.Sm_consensus.valid then incr validities;
      if Array.for_all (fun o -> o <> None) r.Shmem.Sm_consensus.outputs then
        incr terminations
    done;
    let frac k = float_of_int !k /. float_of_int seed_count in
    Stats.Table.add_row table
      [
        I n; S name; I seed_count;
        Pct (frac agreements); Pct (frac validities); Pct (frac terminations);
        F (Stats.Summary.mean !rounds);
        F (Stats.Summary.mean !coins);
        F (Stats.Summary.mean !steps);
        F (Stats.Summary.mean !steps /. float_of_int (n * n));
      ]
  in
  List.iter
    (fun n ->
      run_cell ~n ~name:"round-robin" ~scheduler:Shmem.Shared_coin.Round_robin;
      run_cell ~n ~name:"random" ~scheduler:(Shmem.Shared_coin.Random 5);
      run_cell ~n ~name:"stalling" ~scheduler:Shmem.Shared_coin.Stalling)
    ns;
  table

(* ------------------------------------------------------------------ *)
(* E13: the Attiya-Censor termination tail ([4]).                      *)

let e13_termination_tail ?(jobs = 1) ~scale () =
  let n, t, seed_count =
    match scale with `Full -> (9, 4, 400) | `Quick -> (7, 3, 60)
  in
  (* Survival of the step count in units of (n - t), the scale at which
     [4] lower-bounds the non-termination probability by 1/c^k. *)
  let unit = n - t in
  let survival_points = ref [] in
  let steps_of seed =
    let inputs = Ensemble.split_inputs ~n seed in
    let config =
      Dsim.Engine.init ~protocol:(Protocols.Ben_or.protocol ()) ~n ~fault_bound:t
        ~inputs ~seed ()
    in
    let outcome =
      Dsim.Runner.run_steps config
        ~strategy:(Adversary.Split_vote.stepwise ())
        ~max_steps:10_000_000 ~stop:`First_decision
    in
    outcome.Dsim.Runner.steps
  in
  (* Parallelizes through Histogram.merge: one singleton histogram per
     seed, reduced exactly, so -j does not move a single bucket. *)
  let histogram =
    Par_sweep.map_reduce ~jobs ~merge:Stats.Histogram.merge
      ~init:(Stats.Histogram.empty ())
      ~f:(fun seed ->
        let h = Stats.Histogram.create ~bucket_width:unit () in
        Stats.Histogram.add h (steps_of seed);
        h)
      (Array.of_list (seeds_list seed_count))
  in
  let survival = Stats.Histogram.survival histogram in
  let len = List.length survival in
  let stride = max 1 (len / 18) in
  List.iteri
    (fun i (bucket, p) ->
      if (i mod stride = 0 || i = len - 1) && p > 0.0 then
        survival_points := (float_of_int (bucket / unit), p) :: !survival_points)
    survival;
  let fit =
    match !survival_points with
    | _ :: _ :: _ -> Some (Stats.Regression.log2_linear (List.rev !survival_points))
    | _ -> None
  in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E13: Attiya-Censor tail ([4]) — P[steps > k(n-t)] for Ben-Or under balancing, n = %d, t = %d%s"
           n t
           (match fit with
           | Some f ->
               Printf.sprintf " (log2 P ~ %.4f k, r^2 = %.3f => c ~ %.4f)"
                 f.Stats.Regression.slope f.Stats.Regression.r_squared
                 (2.0 ** -.f.Stats.Regression.slope)
           | None -> ""))
      ~columns:[ "k (steps / (n-t))"; "P[steps > k(n-t)]" ]
  in
  List.iteri
    (fun i (bucket, p) ->
      if i mod stride = 0 || i = len - 1 then
        Stats.Table.add_row table [ I (bucket / unit); F p ])
    survival;
  table

(* ------------------------------------------------------------------ *)
(* E14: reset fragility of the baselines.                              *)

let e14_reset_fragility ?(jobs = 1) ~scale () =
  let seed_count, max_windows =
    match scale with `Full -> (80, 3_000) | `Quick -> (10, 600)
  in
  let table =
    Stats.Table.create
      ~title:
        "E14: resets without a re-join procedure — the variant's recovery (Sec. 3, 'handling resets') is load-bearing"
      ~columns:
        [ "protocol"; "adversary"; "n"; "t"; "runs"; "agreement"; "termination";
          "mean windows (terminated)"; "mean resets" ]
  in
  let cell name protocol ~strategy ~strategy_name =
    let n = 13 and t = 2 in
    let spec =
      {
        Ensemble.n;
        t;
        inputs = Ensemble.split_inputs ~n;
        max_windows;
        max_steps = 0;
        stop = `All_decided;
      }
    in
    let result = Ensemble.run_windowed ~jobs ~protocol ~strategy ~spec ~seeds:(seeds_list seed_count) () in
    Stats.Table.add_row table
      [
        S name; S strategy_name; I n; I t; I result.Ensemble.runs;
        Pct (Ensemble.agreement_rate result);
        Pct (Ensemble.termination_rate result);
        F (Stats.Summary.mean result.Ensemble.windows);
        F (Stats.Summary.mean result.Ensemble.total_resets);
      ]
  in
  (* A polymorphic factory so each protocol instantiates the strategy
     at its own state/message types. *)
  let make_strategy kind seed =
    match kind with
    | `Benign -> Adversary.Benign.windowed ()
    | `Rotating -> Adversary.Reset_storm.rotating ()
    | `Random -> Adversary.Reset_storm.random ~seed ()
  in
  List.iter
    (fun (strategy_name, kind) ->
      cell "lewko-variant"
        (Protocols.Lewko_variant.protocol ())
        ~strategy:(make_strategy kind) ~strategy_name;
      cell "ben-or" (Protocols.Ben_or.protocol ()) ~strategy:(make_strategy kind)
        ~strategy_name;
      cell "bracha" (Protocols.Bracha.protocol ()) ~strategy:(make_strategy kind)
        ~strategy_name)
    [ ("benign", `Benign); ("reset-rotating", `Rotating); ("reset-random", `Random) ];
  table

(* ------------------------------------------------------------------ *)
(* E16: bounded exhaustive model checking — safety proved, not         *)
(* sampled, on small instances; mutants falsified with minimal         *)
(* counterexamples.                                                    *)

let e16_modelcheck ?(jobs = 1) ~scale () =
  let table =
    Stats.Table.create
      ~title:
        "E16: bounded model checking — exhaustive window-schedule \
         exploration (clean = zero violations within the bounds; mutants \
         MUST violate)"
      ~columns:
        [ "model"; "mode"; "n"; "t"; "corrupt"; "depth"; "states";
          "candidates"; "sym-collapsed"; "violations"; "min-depth"; "clean" ]
  in
  let explore name ~n ~t ~corrupt ~depth =
    let model = Option.get (Mcheck.Model.find name) in
    let opts =
      {
        (Mcheck.Model.options model ~n ~t) with
        Mcheck.Explore.depth;
        corrupt;
        jobs;
        sharder = Mcheck_bridge.sharder;
      }
    in
    let r = Mcheck.Model.run model opts in
    Stats.Table.add_row table
      [
        S name; S "explore"; I n; I t; I corrupt; I depth;
        I r.Mcheck.Explore.total_states; I r.Mcheck.Explore.total_candidates;
        I r.Mcheck.Explore.total_symmetry_hits;
        I r.Mcheck.Explore.violations_total;
        (match r.Mcheck.Explore.violations with
        | [] -> S "-"
        | v :: _ -> I v.Mcheck.Explore.vdepth);
        B (r.Mcheck.Explore.violations_total = 0);
      ]
  in
  (* The Bracha all-quorums-at-t mutant's minimal counterexample needs 9
     windows (3 phases x 3 reliable-broadcast hops) — past the
     exhaustive horizon, so it is re-validated by deterministic replay
     of the pinned equivocation schedule (see test_mcheck.ml). *)
  let replay name ~schedule ~inputs ~corrupt =
    let model = Option.get (Mcheck.Model.find name) in
    let n = Array.length inputs in
    let opts =
      { (Mcheck.Model.options model ~n ~t:1) with Mcheck.Explore.corrupt }
    in
    let report = Mcheck.Model.replay model opts ~inputs schedule in
    let violated =
      report.Mcheck.Explore.conflict
      || report.Mcheck.Explore.audit_violations <> []
    in
    Stats.Table.add_row table
      [
        S name; S "replay"; I n; I 1; I corrupt;
        I (Array.length schedule); I (Array.length schedule + 1); I 0; I 0;
        I (if violated then 1 else 0);
        (if violated then I (Array.length schedule) else S "-");
        B (not violated);
      ]
  in
  let depth_sound, depth_lewko =
    match scale with `Full -> (4, 6) | `Quick -> (3, 4)
  in
  explore "bracha" ~n:3 ~t:1 ~corrupt:0 ~depth:depth_sound;
  explore "ben-or" ~n:3 ~t:1 ~corrupt:0 ~depth:depth_sound;
  explore "rbc" ~n:3 ~t:1 ~corrupt:0 ~depth:depth_sound;
  explore "lewko" ~n:3 ~t:0 ~corrupt:0 ~depth:depth_lewko;
  explore "ben-or!quorum-1" ~n:3 ~t:1 ~corrupt:1 ~depth:2;
  explore "rbc!quorum-t" ~n:3 ~t:1 ~corrupt:1 ~depth:3;
  let equivocate = Array.make 9 3 in
  replay "bracha!quorum-t" ~schedule:equivocate
    ~inputs:[| false; true; false |] ~corrupt:1;
  replay "bracha" ~schedule:equivocate ~inputs:[| false; true; false |]
    ~corrupt:1;
  table

(* ------------------------------------------------------------------ *)

let e2_with_fit ~jobs ~scale =
  let e2_table, e2_fit = e2_exponential_variant ~jobs ~scale () in
  let fit_note =
    Stats.Table.create ~title:"E2 (fit): log2(mean windows) vs n"
      ~columns:[ "slope (bits/processor)"; "intercept"; "r^2" ]
  in
  Stats.Table.add_row fit_note
    [
      F e2_fit.Stats.Regression.slope;
      F e2_fit.Stats.Regression.intercept;
      F e2_fit.Stats.Regression.r_squared;
    ];
  (e2_table, fit_note)

(* Experiments that sweep seed ensembles take [jobs]; the purely
   numeric ones ignore it. *)
let generators : (string * (jobs:int -> scale:scale -> Stats.Table.t)) list =
  [
    ("E0-lint", fun ~jobs ~scale -> e0_trace_lint ~jobs ~scale ());
    ("E1", fun ~jobs ~scale -> e1_theorem4_matrix ~jobs ~scale ());
    ("E2", fun ~jobs ~scale -> fst (e2_with_fit ~jobs ~scale));
    ("E2-fit", fun ~jobs ~scale -> snd (e2_with_fit ~jobs ~scale));
    ("E2-survival", fun ~jobs ~scale -> e2_survival ~jobs ~scale ());
    ("E3", fun ~jobs ~scale -> e3_baselines ~jobs ~scale ());
    ("E4", fun ~jobs:_ ~scale -> e4_talagrand ~scale);
    ("E5", fun ~jobs:_ ~scale -> e5_interpolation ~scale);
    ("E5b", fun ~jobs:_ ~scale -> e5b_zk_sets ~scale);
    ("E6", fun ~jobs:_ ~scale -> e6_theory_constants ~scale);
    ("E7", fun ~jobs ~scale -> e7_reset_resilience ~jobs ~scale ());
    ("E8", fun ~jobs ~scale -> e8_forgetful_class ~jobs ~scale ());
    ("E9", fun ~jobs:_ ~scale -> e9_committee ~scale);
    ("E10", fun ~jobs ~scale -> e10_ablations ~jobs ~scale ());
    ("E11", fun ~jobs:_ ~scale -> e11_synchronous ~scale);
    ("E12", fun ~jobs:_ ~scale -> e12_shared_memory ~scale);
    ("E13", fun ~jobs ~scale -> e13_termination_tail ~jobs ~scale ());
    ("E14", fun ~jobs ~scale -> e14_reset_fragility ~jobs ~scale ());
    ("E15", fun ~jobs:_ ~scale -> e15_sm_consensus ~scale);
    ("E16", fun ~jobs ~scale -> e16_modelcheck ~jobs ~scale ());
  ]

let selected ?(jobs = 1) ~scale ~ids () =
  (* E2 and E2-fit come from the same sweep; compute it once when both
     are requested. *)
  let wanted id = ids = [] || List.mem id ids in
  let e2_pair = lazy (e2_with_fit ~jobs ~scale) in
  List.filter_map
    (fun (id, generate) ->
      if not (wanted id) then None
      else
        match id with
        | "E2" -> Some (id, fst (Lazy.force e2_pair))
        | "E2-fit" -> Some (id, snd (Lazy.force e2_pair))
        | _ -> Some (id, generate ~jobs ~scale))
    generators

let all ?jobs ~scale () = selected ?jobs ~scale ~ids:[] ()

let experiment_ids = List.map fst generators

let render_markdown tables =
  tables
  |> List.map (fun (id, table) ->
         Printf.sprintf "### %s\n\n```\n%s```\n" id (Stats.Table.to_string table))
  |> String.concat "\n"
