(* The sanctioned home of Domain and Atomic: static-lint rule R6 flags
   multicore primitives everywhere else (the linter's domain allowlist
   names exactly this file), so all parallelism routes through here. *)

let default_jobs () = Domain.recommended_domain_count ()

let chunk ~size items =
  if size <= 0 then invalid_arg "Par_sweep.chunk: size must be positive";
  let rec take k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> take (k - 1) (x :: acc) rest
  in
  let rec go = function
    | [] -> []
    | items ->
        let c, rest = take size [] items in
        c :: go rest
  in
  go items

(* Test hook: how many domains this module has ever spawned.  The
   fast-path tests assert it stays at zero when parallelism cannot
   help (jobs = 1, or a single-core host). *)
let spawn_tally = Atomic.make 0

let spawned_domains () = Atomic.get spawn_tally

let map_reduce ?(jobs = 1) ~merge ~init ~f items =
  let n = Array.length items in
  let workers =
    (* On a single-core host extra domains cannot run in parallel; they
       only add spawn/join overhead (measured: 2.0x wall-clock at -j 2,
       3.2x at -j 4 on one core), so collapse to the sequential path.
       The fold below is the same in-order reduction either way, so
       outputs stay byte-identical. *)
    if Domain.recommended_domain_count () = 1 then 1
    else Int.min (Int.max 1 jobs) n
  in
  if workers <= 1 then Array.fold_left (fun acc x -> merge acc (f x)) init items
  else begin
    (* Each slot is written by exactly one worker (whoever claimed its
       index) and read only after every worker has joined, so the array
       is race-free; the fold below is the only ordering that matters
       and it is fixed. *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let work () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (try Ok (f items.(i)) with e -> Error e);
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      List.init (workers - 1) (fun _ ->
          Atomic.incr spawn_tally;
          Domain.spawn work)
    in
    work ();
    List.iter Domain.join spawned;
    Array.fold_left
      (fun acc slot ->
        match slot with
        | Some (Ok v) -> merge acc v
        | Some (Error e) -> raise e
        | None -> assert false)
      init results
  end
