(** Seed ensembles: run one (protocol, adversary) pair across many
    seeds and aggregate the paper-relevant statistics.

    Every experiment row in the reproduction harness is produced by one
    of these sweeps.  All runs are deterministic functions of their
    seed, which is what makes the [?jobs] parallel path below safe:
    seeds are distributed over [jobs] domains via {!Par_sweep} and the
    per-seed {!Partial} results are reduced with an integer-exact
    commutative/associative merge, so the result is bit-identical to
    the sequential fold for every [jobs] value. *)

type spec = {
  n : int;
  t : int;
  inputs : int -> bool array;
      (** Inputs per seed (e.g. constant split, or rotated). *)
  max_windows : int;  (** Budget for windowed runs. *)
  max_steps : int;  (** Budget for free-running runs. *)
  stop : Dsim.Runner.stop_condition;
}

val split_inputs : n:int -> int -> bool array
(** Alternating 0/1 inputs, rotated by the seed so both values lead. *)

val constant_inputs : n:int -> bool -> int -> bool array

(** Integer-exact per-chunk aggregation state.  [merge] is commutative
    and associative with [empty ()] as identity — exactly, not up to
    float rounding — so merging the partials of {i any} chunking of a
    seed list equals the unchunked fold bit for bit (the property
    [test/test_par_sweep.ml] checks mechanically). *)
module Partial : sig
  type t

  val empty : unit -> t
  (** Fresh identity element (the histogram inside is mutable, hence a
      function). *)

  val merge : t -> t -> t
  (** Combines without mutating either operand. *)

  val equal : t -> t -> bool
  val runs : t -> int
end

type result = {
  runs : int;
  agreement_failures : int;
  validity_failures : int;
  terminated : int;  (** Runs where the stop condition fired in budget. *)
  windows : Stats.Summary.t;  (** Windows to stop, over terminated runs. *)
  steps : Stats.Summary.t;
  chain_depth : Stats.Summary.t;  (** Message-chain length at stop. *)
  total_resets : Stats.Summary.t;
  decisions_zero : int;  (** Terminated runs deciding 0. *)
  decisions_one : int;
  window_histogram : Stats.Histogram.t;  (** Windows-to-stop distribution. *)
  lint_violations : int;
      (** Trace-invariant violations across all audited runs; always 0
          unless the sweep ran with [~lint:true]. *)
}

val finalize : Partial.t -> result
(** Deterministic conversion of exact integer moments into the public
    summaries; the single place floats enter the aggregation.  The
    result shares the partial's histogram. *)

val equal_result : result -> result -> bool
(** Field-by-field equality (bitwise on summary floats, observational
    on histograms): what "bit-identical sweeps" means operationally. *)

val run_windowed :
  ?jobs:int ->
  ?lint:bool ->
  ?track_deliveries:bool ->
  ?lint_fifo:bool ->
  ?lint_quorum:int ->
  protocol:('s, 'm) Dsim.Protocol.t ->
  strategy:(int -> ('s, 'm) Adversary.Strategy.windowed) ->
  spec:spec ->
  seeds:int list ->
  unit ->
  result
(** One windowed run per seed; the strategy factory receives the seed
    so stateful strategies are fresh per run.

    [jobs] (default 1) runs seeds on up to that many domains; the
    result is bit-identical for every value (see {!Partial}).  The
    protocol record, spec and strategy factory are shared across
    domains and must stay immutable — true of every protocol/adversary
    in this repository, where all per-run state is created inside the
    run from the seed.

    With [~lint:true] (default false) every engine records its full
    event trace and {!Lintkit.Trace_lint.audit} checks it after the
    run; the violation count lands in [lint_violations] (summed over
    per-seed audits, so it parallelizes like every other field).
    [lint_fifo] (default true) controls the per-channel FIFO invariant
    — disable it for deferral adversaries that legitimately reorder
    channels.  [lint_quorum] is the minimum number of distinct senders
    a processor must have heard from before deciding.

    [track_deliveries] (default false) turns on the engine's
    per-delivery conditioning log ({!Dsim.Engine.recent_deliveries});
    only the forgetfulness/E9 analyses read it, so plain sweeps leave
    it off and skip the recording cost. *)

val run_stepwise :
  ?jobs:int ->
  ?lint:bool ->
  ?track_deliveries:bool ->
  ?lint_fifo:bool ->
  ?lint_quorum:int ->
  protocol:('s, 'm) Dsim.Protocol.t ->
  strategy:(int -> ('s, 'm) Adversary.Strategy.stepwise) ->
  spec:spec ->
  seeds:int list ->
  unit ->
  result

val partial_windowed :
  ?jobs:int ->
  ?lint:bool ->
  ?track_deliveries:bool ->
  ?lint_fifo:bool ->
  ?lint_quorum:int ->
  protocol:('s, 'm) Dsim.Protocol.t ->
  strategy:(int -> ('s, 'm) Adversary.Strategy.windowed) ->
  spec:spec ->
  seeds:int list ->
  unit ->
  Partial.t
(** The pre-[finalize] aggregation behind {!run_windowed}; exposed so
    tests can check the merge algebra against real sweeps. *)

val partial_stepwise :
  ?jobs:int ->
  ?lint:bool ->
  ?track_deliveries:bool ->
  ?lint_fifo:bool ->
  ?lint_quorum:int ->
  protocol:('s, 'm) Dsim.Protocol.t ->
  strategy:(int -> ('s, 'm) Adversary.Strategy.stepwise) ->
  spec:spec ->
  seeds:int list ->
  unit ->
  Partial.t

val termination_rate : result -> float
val agreement_rate : result -> float
val validity_rate : result -> float

val pp_result : Format.formatter -> result -> unit
(** Multi-line human summary (used by the CLI sweep mode). *)
