(** Seed ensembles: run one (protocol, adversary) pair across many
    seeds and aggregate the paper-relevant statistics.

    Every experiment row in the reproduction harness is produced by one
    of these sweeps.  All runs are deterministic functions of their
    seed. *)

type spec = {
  n : int;
  t : int;
  inputs : int -> bool array;
      (** Inputs per seed (e.g. constant split, or rotated). *)
  max_windows : int;  (** Budget for windowed runs. *)
  max_steps : int;  (** Budget for free-running runs. *)
  stop : Dsim.Runner.stop_condition;
}

val split_inputs : n:int -> int -> bool array
(** Alternating 0/1 inputs, rotated by the seed so both values lead. *)

val constant_inputs : n:int -> bool -> int -> bool array

type result = {
  runs : int;
  agreement_failures : int;
  validity_failures : int;
  terminated : int;  (** Runs where the stop condition fired in budget. *)
  windows : Stats.Summary.t;  (** Windows to stop, over terminated runs. *)
  steps : Stats.Summary.t;
  chain_depth : Stats.Summary.t;  (** Message-chain length at stop. *)
  total_resets : Stats.Summary.t;
  decisions_zero : int;  (** Terminated runs deciding 0. *)
  decisions_one : int;
  window_histogram : Stats.Histogram.t;  (** Windows-to-stop distribution. *)
  lint_violations : int;
      (** Trace-invariant violations across all audited runs; always 0
          unless the sweep ran with [~lint:true]. *)
}

val run_windowed :
  ?lint:bool ->
  ?lint_fifo:bool ->
  ?lint_quorum:int ->
  protocol:('s, 'm) Dsim.Protocol.t ->
  strategy:(int -> ('s, 'm) Adversary.Strategy.windowed) ->
  spec:spec ->
  seeds:int list ->
  unit ->
  result
(** One windowed run per seed; the strategy factory receives the seed
    so stateful strategies are fresh per run.

    With [~lint:true] (default false) every engine records its full
    event trace and {!Lintkit.Trace_lint.audit} checks it after the
    run; the violation count lands in [lint_violations].  [lint_fifo]
    (default true) controls the per-channel FIFO invariant — disable it
    for deferral adversaries that legitimately reorder channels.
    [lint_quorum] is the minimum number of distinct senders a
    processor must have heard from before deciding. *)

val run_stepwise :
  ?lint:bool ->
  ?lint_fifo:bool ->
  ?lint_quorum:int ->
  protocol:('s, 'm) Dsim.Protocol.t ->
  strategy:(int -> ('s, 'm) Adversary.Strategy.stepwise) ->
  spec:spec ->
  seeds:int list ->
  unit ->
  result

val termination_rate : result -> float
val agreement_rate : result -> float
val validity_rate : result -> float
