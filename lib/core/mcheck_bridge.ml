(* The one wire between the model checker and the Domain-based sweep
   machinery.  [Mcheck] itself stays Domain-free (static-lint rule R6
   confines Domain/Atomic to Par_sweep); it takes frontier expansion as
   an injected [sharder], and this is the injection.

   Determinism: [Par_sweep.map_reduce] always reduces per-item results
   in index order on the calling domain, and the explorer's merge is
   associative with its init as identity, so the merged frontier — and
   therefore every number the checker prints — is bit-identical for
   every [jobs] value. *)

let sharder : Mcheck.Explore.sharder =
  {
    Mcheck.Explore.run =
      (fun ~jobs ~merge ~init ~f items ->
        Par_sweep.map_reduce ~jobs ~merge ~init ~f items);
  }
