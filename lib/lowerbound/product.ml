type t = { pmfs : float array array }

let normalize row =
  let total = Array.fold_left ( +. ) 0.0 row in
  if total <= 0.0 then invalid_arg "Product.create: row with zero mass";
  Array.iter (fun p -> if p < 0.0 then invalid_arg "Product.create: negative probability") row;
  if Float.abs (total -. 1.0) > 1e-9 then
    invalid_arg "Product.create: row does not sum to 1";
  Array.map (fun p -> p /. total) row

let create pmfs =
  if Array.length pmfs = 0 then invalid_arg "Product.create: no coordinates";
  Array.iter (fun row -> if Array.length row = 0 then invalid_arg "Product.create: empty row") pmfs;
  { pmfs = Array.map normalize pmfs }

let dims t = Array.length t.pmfs
let support t i = Array.length t.pmfs.(i)

let uniform_bits ~n = create (Array.make n [| 0.5; 0.5 |])

let bernoulli ps = create (Array.map (fun p -> [| 1.0 -. p; p |]) ps)

let hybrid a b ~j =
  if dims a <> dims b then invalid_arg "Product.hybrid: dimension mismatch";
  if j < 0 || j > dims a then invalid_arg "Product.hybrid: j out of range";
  { pmfs = Array.init (dims a) (fun i -> if i < j then a.pmfs.(i) else b.pmfs.(i)) }

let coordinate_pmf t i = Array.copy t.pmfs.(i)

let sample t rng =
  Array.map
    (fun row ->
      let u = Prng.Stream.float rng in
      let rec pick i acc =
        if i >= Array.length row - 1 then i
        else
          let acc = acc +. row.(i) in
          if u < acc then i else pick (i + 1) acc
      in
      pick 0 0.0)
    t.pmfs

let total_outcomes t =
  Array.fold_left (fun acc row -> acc *. float_of_int (Array.length row)) 1.0 t.pmfs

let prob_exact t predicate =
  if total_outcomes t > float_of_int (1 lsl 22) then
    invalid_arg "Product.prob_exact: space too large";
  let n = dims t in
  let point = Array.make n 0 in
  (* Depth-first enumeration with running probability. *)
  let rec walk i p acc =
    if Float.equal p 0.0 then acc
    else if i = n then if predicate point then acc +. p else acc
    else begin
      let row = t.pmfs.(i) in
      let acc = ref acc in
      Array.iteri
        (fun v pv ->
          point.(i) <- v;
          acc := walk (i + 1) (p *. pv) !acc)
        row;
      !acc
    end
  in
  walk 0 1.0 0.0

let prob_mc t ~samples ~seed predicate =
  if samples <= 0 then invalid_arg "Product.prob_mc: samples must be positive";
  let rng = Prng.Stream.root seed in
  let hits = ref 0 in
  for _ = 1 to samples do
    if predicate (sample t rng) then incr hits
  done;
  float_of_int !hits /. float_of_int samples

let prob ?(samples = 100_000) ?(seed = 0) t predicate =
  if total_outcomes t <= float_of_int (1 lsl 22) then prob_exact t predicate
  else prob_mc t ~samples ~seed predicate
