let block ~n ~t start = List.init t (fun i -> (start + i) mod n)

let canonical_choices ~n ~t =
  if t = 0 then [ ([], []) ]
  else
    let b0 = block ~n ~t 0 and b1 = block ~n ~t t in
    [
      ([], []);
      ([], b0);
      (b0, []);
      (b0, b0);
      ([], b1);
      (b1, b1);
    ]

let in_z0 config ~value =
  List.exists (fun (_, v) -> v = value) (Dsim.Engine.decided_values config)

let apply_choice config (resets, silenced) =
  let n = Dsim.Engine.n config in
  Dsim.Engine.apply_window config (Dsim.Window.uniform ~n ~silenced ~resets ())

let rec member config ~k ~value ~samples ~tau ~rng =
  if k <= 0 then in_z0 config ~value
  else begin
    let n = Dsim.Engine.n config and t = Dsim.Engine.fault_bound config in
    let choices = canonical_choices ~n ~t in
    (* Member of Z^k iff every canonical choice lands in Z^{k-1} with
       probability > tau. *)
    List.for_all
      (fun choice ->
        let hits = ref 0 in
        for _ = 1 to samples do
          let fork = Dsim.Engine.copy config in
          (* Deliberate R9 exception: every Monte-Carlo fork needs coins
             the simulated adversary could not anticipate, so the reseed
             is derived from the live draw position; pinned Z^k
             membership values depend on this exact stream sequence. *)
          (* lint: allow R9 *)
          Dsim.Engine.reseed fork (Prng.Stream.derive rng (Prng.Stream.bits rng));
          apply_choice fork choice;
          if member fork ~k:(k - 1) ~value ~samples ~tau ~rng then incr hits
        done;
        float_of_int !hits /. float_of_int samples > tau)
      choices
  end

type separation = {
  pairs_checked : int;
  min_distance : int;
  bound : int;
  holds : bool;
}

let estimate_zk_separation ~protocol ~n ~t ~k ~runs ~samples ~seed =
  let rng = Prng.Stream.root seed in
  let tau = Stats.Tail.tau ~n ~t in
  let zero_configs = ref [] and one_configs = ref [] in
  for run = 1 to runs do
    (* Unanimous inputs of alternating value: the resulting reachable
       configurations are deep inside Z^k of that value, so both
       buckets fill quickly. *)
    let value = run mod 2 = 0 in
    let inputs = Array.make n value in
    let config =
      Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs
        ~seed:(seed + (run * 104729)) ()
    in
    (* A short random window prefix (possibly zero windows). *)
    let prefix = Prng.Stream.int_below rng 3 in
    for _ = 1 to prefix do
      let silenced =
        if t > 0 && Prng.Stream.bool rng then
          Prng.Stream.sample_without_replacement rng t n
        else []
      in
      Dsim.Engine.apply_window config (Dsim.Window.uniform ~n ~silenced ())
    done;
    let in0 = member config ~k ~value:false ~samples ~tau ~rng in
    let in1 = member config ~k ~value:true ~samples ~tau ~rng in
    match (in0, in1) with
    | true, false -> zero_configs := Dsim.Engine.state_cores config :: !zero_configs
    | false, true -> one_configs := Dsim.Engine.state_cores config :: !one_configs
    | _, _ -> ()
  done;
  match (!zero_configs, !one_configs) with
  | [], _ | _, [] ->
      { pairs_checked = 0; min_distance = max_int; bound = t; holds = true }
  | zeros, ones ->
      let min_distance = Hamming.distance_between_sets zeros ones in
      {
        pairs_checked = List.length zeros * List.length ones;
        min_distance;
        bound = t;
        holds = min_distance > t;
      }

let estimate_z0_separation ~protocol ~n ~t ~runs ~seed =
  let rng = Prng.Stream.root seed in
  let zero_configs = ref [] and one_configs = ref [] in
  for run = 1 to runs do
    (* Split inputs, rotated per run so both decisions occur. *)
    let inputs = Array.init n (fun i -> (i + run) mod 2 = 0) in
    let config =
      Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs
        ~seed:(seed + (run * 7919)) ()
    in
    (* Randomized window adversary: random silencing each window. *)
    let strategy cfg =
      let silenced =
        if t > 0 && Prng.Stream.bool rng then
          Prng.Stream.sample_without_replacement rng t n
        else []
      in
      ignore cfg;
      Some (Dsim.Window.uniform ~n ~silenced ())
    in
    let outcome =
      Dsim.Runner.run_windows config ~strategy ~max_windows:500 ~stop:`First_decision
    in
    match outcome.Dsim.Runner.decided with
    | (_, true) :: _ -> one_configs := Dsim.Engine.state_cores config :: !one_configs
    | (_, false) :: _ -> zero_configs := Dsim.Engine.state_cores config :: !zero_configs
    | [] -> ()
  done;
  match (!zero_configs, !one_configs) with
  | [], _ | _, [] ->
      { pairs_checked = 0; min_distance = max_int; bound = t; holds = true }
  | zeros, ones ->
      let min_distance = Hamming.distance_between_sets zeros ones in
      {
        pairs_checked = List.length zeros * List.length ones;
        min_distance;
        bound = t;
        holds = min_distance > t;
      }
