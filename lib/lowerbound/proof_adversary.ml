let tau_of config =
  Stats.Tail.tau ~n:(Dsim.Engine.n config) ~t:(Dsim.Engine.fault_bound config)

let level config ~k_max ~samples ~rng =
  let tau = tau_of config in
  let rec scan k =
    if k < 0 then -1
    else
      let in0 = Zk_sets.member config ~k ~value:false ~samples ~tau ~rng in
      let in1 = Zk_sets.member config ~k ~value:true ~samples ~tau ~rng in
      if (not in0) && not in1 then k else scan (k - 1)
  in
  scan k_max

let windowed ~k_max ~samples ~seed () =
  let rng = Prng.Stream.root seed in
  fun config ->
    let n = Dsim.Engine.n config and t = Dsim.Engine.fault_bound config in
    let tau = Stats.Tail.tau ~n ~t in
    let k = level config ~k_max ~samples ~rng in
    if k <= 0 then Some (Dsim.Window.uniform ~n ())
    else begin
      (* Score every canonical window by its estimated probability of
         landing in Z^{k-1}_0 ∪ Z^{k-1}_1 after application. *)
      let score (resets, silenced) =
        let hits = ref 0 in
        for _ = 1 to samples do
          let fork = Dsim.Engine.copy config in
          (* Deliberate R9 exception (same as Zk_sets.member): fork
             coins must track the live draw position; pinned scores
             depend on this exact stream sequence. *)
          (* lint: allow R9 *)
          Dsim.Engine.reseed fork (Prng.Stream.derive rng (Prng.Stream.bits rng));
          Dsim.Engine.apply_window fork (Dsim.Window.uniform ~n ~silenced ~resets ());
          let bad =
            Zk_sets.member fork ~k:(k - 1) ~value:false ~samples ~tau ~rng
            || Zk_sets.member fork ~k:(k - 1) ~value:true ~samples ~tau ~rng
          in
          if bad then incr hits
        done;
        float_of_int !hits /. float_of_int samples
      in
      let choices = Zk_sets.canonical_choices ~n ~t in
      let best_choice, _ =
        List.fold_left
          (fun (best, best_score) choice ->
            let s = score choice in
            if s < best_score then (choice, s) else (best, best_score))
          (List.hd choices, infinity)
          choices
      in
      let resets, silenced = best_choice in
      Some (Dsim.Window.uniform ~n ~silenced ~resets ())
    end
