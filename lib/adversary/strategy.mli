(** Adversary strategies.

    The paper models an adversary as a deterministic function from the
    partial execution to the next applicable step (Section 2).  Because
    the engine's configuration determines everything the adversary may
    depend on (it has full information), we realize an adversary as a
    function of the current configuration.  Strategies may carry hidden
    mutable state (agendas, randomness of their own): the paper allows
    arbitrary adversaries, and derandomizing a randomized adversary only
    strengthens it.

    Two shapes, matching {!Dsim.Runner}'s two disciplines. *)

type ('s, 'm) windowed = ('s, 'm) Dsim.Engine.t -> Dsim.Window.t option
(** Supplies the next acceptable window, or halts. *)

type ('s, 'm) stepwise = ('s, 'm) Dsim.Engine.t -> 'm Dsim.Step.t option
(** Supplies the next fine-grained step, or halts. *)

val cached_uniform :
  n:int -> ?silenced:int list -> ?resets:int list -> unit -> Dsim.Window.t
(** {!Dsim.Window.uniform} behind a last-one memo: repeated calls with
    equal parameters return the very same window, so a run of them
    carries physically-equal masks and {!Dsim.Engine.apply_windows}
    can fuse the run into one sweep.  Windows are immutable once
    built, so sharing is sound. *)

val limit_windows : int -> ('s, 'm) windowed -> ('s, 'm) windowed
(** Halt after the given number of windows have been supplied. *)

val switch_after : int -> ('s, 'm) windowed -> ('s, 'm) windowed -> ('s, 'm) windowed
(** Play the first strategy for [k] windows, then the second. *)

val vote_census : ('s, 'm) Dsim.Engine.t -> int * int * int
(** [(zeros, ones, silent)]: how many processors will vote 0, vote 1,
    or not vote in the coming window, read off the full-information
    observations (estimates of non-recovering processors).  The census
    is exact for protocols whose per-window vote equals their current
    estimate — sending steps are deterministic, so the adversary can
    always predict them. *)

val majority_holders : ('s, 'm) Dsim.Engine.t -> limit:int -> int list
(** Up to [limit] processor ids currently holding the majority estimate
    (ties broken toward value [false]), lowest ids first.  The natural
    silencing set for a balancing adversary. *)
