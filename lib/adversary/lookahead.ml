(* The candidate menu depends only on (n, t), and the strategy asks for
   it once per window: memoize the last menu so the 2n + 1 windows are
   built once per run, not once per window. *)
let candidates_memo : (int * int * Dsim.Window.t list) option ref = ref None

let default_candidates config =
  let n = Dsim.Engine.n config and t = Dsim.Engine.fault_bound config in
  match !candidates_memo with
  | Some (n', t', windows) when n' = n && t' = t -> windows
  | _ ->
      let block start = List.init t (fun i -> (start + i) mod n) in
      let silencers =
        List.init n (fun start -> Dsim.Window.uniform ~n ~silenced:(block start) ())
      in
      let resetters =
        List.init n (fun start ->
            Dsim.Window.uniform ~n ~silenced:(block start) ~resets:(block start) ())
      in
      let windows = (Dsim.Window.uniform ~n () :: silencers) @ resetters in
      candidates_memo := Some (n, t, windows);
      windows

let estimate_decision_probability config window ~samples ~horizon rng =
  let hits = ref 0 in
  for _ = 1 to samples do
    let fork = Dsim.Engine.copy config in
    (* Fresh coins: the adversary cannot see the future randomness.
       Deriving from a stream that is also drawn from is normally an R9
       violation, but here the schedule-dependence is the point: each
       Monte-Carlo fork must get coins the adversary could not predict,
       and pinned regression values depend on this exact sequence. *)
    (* lint: allow R9 *)
    Dsim.Engine.reseed fork (Prng.Stream.derive rng (Prng.Stream.bits rng));
    Dsim.Engine.apply_window fork window;
    let continuation = Split_vote.windowed () in
    let outcome =
      Dsim.Runner.run_windows fork ~strategy:continuation ~max_windows:horizon
        ~stop:`First_decision
    in
    if not (List.is_empty outcome.Dsim.Runner.decided) then incr hits
  done;
  float_of_int !hits /. float_of_int samples

let windowed ~samples ~horizon ~seed ?(candidates = default_candidates) () =
  let rng = Prng.Stream.root seed in
  fun config ->
    let scored =
      List.map
        (fun window ->
          (estimate_decision_probability config window ~samples ~horizon rng, window))
        (candidates config)
    in
    match scored with
    | [] -> None
    | first :: rest ->
        let best =
          List.fold_left
            (fun (best_score, best_window) (score, window) ->
              if score < best_score then (score, window) else (best_score, best_window))
            first rest
        in
        Some (snd best)
