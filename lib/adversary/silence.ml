(* All four strategies go through [Strategy.cached_uniform]: a fixed
   (or slowly rotating) silenced set repeats for long stretches, and
   handing the engine the same window each time lets the batched
   applier fuse the stretch. *)

let fixed ~silenced config =
  Some (Strategy.cached_uniform ~n:(Dsim.Engine.n config) ~silenced ())

let rotating ~period ~count =
  if period <= 0 then invalid_arg "Silence.rotating: period must be positive";
  fun config ->
    let n = Dsim.Engine.n config in
    let block = Dsim.Engine.window_index config / period in
    let silenced = List.init count (fun i -> (i + (block * count)) mod n) in
    Some (Strategy.cached_uniform ~n ~silenced ())

let first_t config =
  let n = Dsim.Engine.n config and t = Dsim.Engine.fault_bound config in
  let silenced = List.init t (fun i -> i) in
  Some (Strategy.cached_uniform ~n ~silenced ())

let last_t config =
  let n = Dsim.Engine.n config and t = Dsim.Engine.fault_bound config in
  let silenced = List.init t (fun i -> n - t + i) in
  Some (Strategy.cached_uniform ~n ~silenced ())
