let windowed () =
  fun config ->
    let n = Dsim.Engine.n config and t = Dsim.Engine.fault_bound config in
    let thresholds =
      if Protocols.Thresholds.feasible ~n ~t then Protocols.Thresholds.default ~n ~t
      else { Protocols.Thresholds.t1 = n - t; t2 = n - t; t3 = (n / 2) + 1 }
    in
    let t2 = thresholds.Protocols.Thresholds.t2
    and t3 = thresholds.Protocols.Thresholds.t3 in
    let observations = Dsim.Engine.observations config in
    let holders value =
      Array.to_list observations
      |> List.filter_map (fun o ->
             if Dsim.Obs.estimate_is o value then Some o.Dsim.Obs.id else None)
    in
    let ones = holders true and zeros = holders false in
    let all = List.init n (fun i -> i) in
    let take k l = List.filteri (fun i _ -> i < k) l in
    (* Receive set for one recipient: hide the listed senders. *)
    let receive_set_for dst =
      match observations.(dst).Dsim.Obs.estimate with
      | None -> all
      | Some b ->
          let own = if b then ones else zeros in
          let opposite = if b then zeros else ones in
          let own_count = List.length own and opp_count = List.length opposite in
          if own_count >= t3 then begin
            (* Sustain b: cap own votes below T2 and opposite below T3;
               hide from the high ids so dst's own vote stays visible. *)
            let hide_own = max 0 (own_count - (t2 - 1)) in
            let hide_opp = max 0 (opp_count - (t3 - 1)) in
            if hide_own + hide_opp <= t then
              let hidden =
                take hide_own (List.rev (List.filter (fun p -> p <> dst) own))
                @ take hide_opp (List.rev opposite)
              in
              List.filter (fun p -> not (List.mem p hidden)) all
            else all
          end
          else begin
            (* Cannot sustain b: balance so dst falls through to its
               coin rather than adopting the other side. *)
            let majority, minority =
              if own_count >= opp_count then (own, opposite) else (opposite, own)
            in
            let hide = min t (List.length majority - List.length minority) in
            let hidden = take hide (List.rev majority) in
            List.filter (fun p -> not (List.mem p hidden)) all
          end
    in
    Some
      (Dsim.Window.make
         ~receive_sets:(Array.init n receive_set_for)
         ~resets:[])
