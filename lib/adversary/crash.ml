let agenda plan =
  let queue = Queue.create () in
  fun config ->
    if Queue.is_empty queue then List.iter (fun s -> Queue.add s queue) (plan config);
    if Queue.is_empty queue then None else Some (Queue.pop queue)

let live_pids config =
  List.filter
    (fun p -> not (Dsim.Engine.crashed config p))
    (List.init (Dsim.Engine.n config) (fun i -> i))

let fair_cycle config =
  let sends = List.map (fun p -> Dsim.Step.Send p) (live_pids config) in
  let delivers =
    List.map
      (fun id -> Dsim.Step.Deliver id)
      (Dsim.Mailbox.pending_ids (Dsim.Engine.mailbox config))
  in
  sends @ delivers

let at_start ~crash =
  let crashed = ref false in
  agenda (fun config ->
      if not !crashed then begin
        crashed := true;
        let t = Dsim.Engine.fault_bound config in
        if List.length crash > t then invalid_arg "Crash.at_start: more than t crashes";
        List.map (fun p -> Dsim.Step.Crash p) crash @ fair_cycle config
      end
      else fair_cycle config)

let staggered ~every =
  if every <= 0 then invalid_arg "Crash.staggered: every must be positive";
  let cycles = ref 0 in
  let next_victim = ref 0 in
  agenda (fun config ->
      incr cycles;
      let t = Dsim.Engine.fault_bound config in
      let crashes =
        if !cycles mod every = 0 && !next_victim < t then begin
          let victim = !next_victim in
          incr next_victim;
          [ Dsim.Step.Crash victim ]
        end
        else []
      in
      crashes @ fair_cycle config)

let before_decision () =
  agenda (fun config ->
      let t = Dsim.Engine.fault_bound config in
      let already = Dsim.Engine.crashed_count config in
      (* One victim per cycle: the undecided processor that has made the
         most progress, so the crash erases the most information. *)
      let victims =
        if already >= t then []
        else
          Array.to_list (Dsim.Engine.observations config)
          |> List.filter (fun o ->
                 Option.is_none o.Dsim.Obs.output
                 && not (Dsim.Engine.crashed config o.Dsim.Obs.id))
          |> List.sort (fun a b -> Int.compare b.Dsim.Obs.round a.Dsim.Obs.round)
          |> (function [] -> [] | best :: _ -> [ Dsim.Step.Crash best.Dsim.Obs.id ])
      in
      victims @ fair_cycle config)
