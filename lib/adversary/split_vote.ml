let escape_threshold ~n:_ ~t ~thresholds = thresholds.Protocols.Thresholds.t3 + t

(* Silence up to [t] holders of the majority estimate.  If both census
   counts already fit under the visible-majority threshold nothing needs
   silencing, but trimming the majority never hurts the adversary. *)
let balancing_silence config =
  let t = Dsim.Engine.fault_bound config in
  let zeros, ones, _ = Strategy.vote_census config in
  let majority_count = max zeros ones in
  let to_silence = min t (max 0 (majority_count - min zeros ones)) in
  Strategy.majority_holders config ~limit:(min t to_silence)

let windowed () =
  fun config ->
    let n = Dsim.Engine.n config in
    (* The balancing set stabilizes once the estimates do; the memo
       then replays one shared window and the engine can batch. *)
    Some (Strategy.cached_uniform ~n ~silenced:(balancing_silence config) ())

let windowed_with_resets () =
  fun config ->
    let n = Dsim.Engine.n config and t = Dsim.Engine.fault_bound config in
    let silenced = balancing_silence config in
    (* Reset further majority holders beyond the silenced ones. *)
    let resets =
      Strategy.majority_holders config ~limit:(2 * t)
      |> List.filter (fun p -> not (List.mem p silenced))
      |> List.filteri (fun i _ -> i < t)
    in
    Some (Dsim.Window.uniform ~n ~silenced ~resets ())

(* Free-running balancing.  Each cycle: sends for all live processors,
   then for each destination deliver the pending messages from all but
   up to [t] senders, excluding senders whose message carries the
   over-represented bit among that destination's pending messages. *)
let stepwise () =
  let queue = Queue.create () in
  let plan config =
    let n = Dsim.Engine.n config and t = Dsim.Engine.fault_bound config in
    let protocol = Dsim.Engine.protocol config in
    let live p = not (Dsim.Engine.crashed config p) in
    let sends =
      List.filter_map
        (fun p -> if live p then Some (Dsim.Step.Send p) else None)
        (List.init n (fun i -> i))
    in
    let mailbox = Dsim.Engine.mailbox config in
    let deliveries_for dst =
      let pending = Dsim.Mailbox.pending_for mailbox ~dst in
      let bit_of e = protocol.Dsim.Protocol.message_bit e.Dsim.Envelope.payload in
      let bit_is e v =
        match bit_of e with Some b -> Bool.equal b v | None -> false
      in
      let ones = List.length (List.filter (fun e -> bit_is e true) pending) in
      let zeros = List.length (List.filter (fun e -> bit_is e false) pending) in
      let majority_bit = if ones >= zeros then true else false in
      let excess = abs (ones - zeros) in
      let budget = min t excess in
      (* Walk ascending ids; skip up to [budget] majority-bit messages. *)
      let skipped = ref 0 in
      List.filter_map
        (fun e ->
          if bit_is e majority_bit && !skipped < budget then begin
            incr skipped;
            Some (Dsim.Step.Drop e.Dsim.Envelope.id)
          end
          else Some (Dsim.Step.Deliver e.Dsim.Envelope.id))
        pending
    in
    let delivers =
      List.concat_map
        (fun dst -> if live dst then deliveries_for dst else [])
        (List.init n (fun i -> i))
    in
    sends @ delivers
  in
  fun config ->
    if Queue.is_empty queue then List.iter (fun s -> Queue.add s queue) (plan config);
    if Queue.is_empty queue then None else Some (Queue.pop queue)
