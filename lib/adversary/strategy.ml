type ('s, 'm) windowed = ('s, 'm) Dsim.Engine.t -> Dsim.Window.t option
type ('s, 'm) stepwise = ('s, 'm) Dsim.Engine.t -> 'm Dsim.Step.t option

(* Windowed strategies rebuild the same uniform window for long
   stretches (benign sweeps, fixed silencing).  A last-one memo keyed
   on the exact parameters hands those stretches back the SAME
   [Window.t]: construction leaves the per-window path, and — because
   the engine's batched applier fuses on physically-equal masks —
   [Engine.apply_windows] can collapse the whole stretch into one
   sweep.  Sound because windows are immutable once built. *)
let uniform_memo : (int * int list * int list * Dsim.Window.t) option ref =
  ref None

let cached_uniform ~n ?(silenced = []) ?(resets = []) () =
  match !uniform_memo with
  | Some (n', s', r', w)
    when n' = n
         && List.equal Int.equal s' silenced
         && List.equal Int.equal r' resets ->
      w
  | _ ->
      let w = Dsim.Window.uniform ~n ~silenced ~resets () in
      uniform_memo := Some (n, silenced, resets, w);
      w

let limit_windows budget strategy =
  let remaining = ref budget in
  fun config ->
    if !remaining <= 0 then None
    else begin
      decr remaining;
      strategy config
    end

let switch_after k first second =
  let played = ref 0 in
  fun config ->
    if !played < k then begin
      incr played;
      first config
    end
    else second config

let vote_census config =
  let zeros = ref 0 and ones = ref 0 and silent = ref 0 in
  Array.iter
    (fun obs ->
      match obs.Dsim.Obs.estimate with
      | Some true -> incr ones
      | Some false -> incr zeros
      | None -> incr silent)
    (Dsim.Engine.observations config);
  (!zeros, !ones, !silent)

let majority_holders config ~limit =
  let zeros, ones, _ = vote_census config in
  let majority = ones > zeros in
  let holders = ref [] in
  let count = ref 0 in
  let obs = Dsim.Engine.observations config in
  Array.iter
    (fun o ->
      if !count < limit && Dsim.Obs.estimate_is o majority then begin
        holders := o.Dsim.Obs.id :: !holders;
        incr count
      end)
    obs;
  List.rev !holders
