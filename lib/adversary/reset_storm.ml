let rotating () =
  fun config ->
    let n = Dsim.Engine.n config and t = Dsim.Engine.fault_bound config in
    let base = Dsim.Engine.window_index config * t in
    let resets = List.init t (fun i -> (base + i) mod n) in
    Some (Dsim.Window.uniform ~n ~resets ())

let random ~seed () =
  let rng = Prng.Stream.root seed in
  fun config ->
    let n = Dsim.Engine.n config and t = Dsim.Engine.fault_bound config in
    let resets = Prng.Stream.sample_without_replacement rng t n in
    Some (Dsim.Window.uniform ~n ~resets ())

let target_undecided () =
  fun config ->
    let n = Dsim.Engine.n config and t = Dsim.Engine.fault_bound config in
    let candidates =
      Array.to_list (Dsim.Engine.observations config)
      |> List.filter (fun o -> Option.is_none o.Dsim.Obs.output)
      (* Highest round first: erase the most progress. *)
      |> List.sort (fun a b -> Int.compare b.Dsim.Obs.round a.Dsim.Obs.round)
    in
    let resets =
      List.filteri (fun i _ -> i < t) candidates |> List.map (fun o -> o.Dsim.Obs.id)
    in
    Some (Dsim.Window.uniform ~n ~resets ())

let with_silence ~seed () =
  let rng = Prng.Stream.root seed in
  fun config ->
    let n = Dsim.Engine.n config and t = Dsim.Engine.fault_bound config in
    let resets = Prng.Stream.sample_without_replacement rng t n in
    let silenced =
      List.filter
        (fun p -> not (List.mem p resets))
        (Prng.Stream.sample_without_replacement rng (2 * t) n)
      |> List.filteri (fun i _ -> i < t)
    in
    Some (Dsim.Window.uniform ~n ~silenced ~resets ())
