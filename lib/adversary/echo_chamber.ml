let stepwise ?(patience = 8) () =
  let queue = Queue.create () in
  let last_progress_mark = ref (-1) in
  let stalled_cycles = ref 0 in
  let plan config =
    let n = Dsim.Engine.n config and t = Dsim.Engine.fault_bound config in
    let protocol = Dsim.Engine.protocol config in
    let observations = Dsim.Engine.observations config in
    let live p = not (Dsim.Engine.crashed config p) in
    (* Progress detection for the stall breaker: total round+phase mass. *)
    let progress_mark =
      Array.fold_left
        (fun acc o -> acc + (max 0 o.Dsim.Obs.round * 8) + o.Dsim.Obs.phase)
        0 observations
    in
    if progress_mark = !last_progress_mark then incr stalled_cycles
    else begin
      last_progress_mark := progress_mark;
      stalled_cycles := 0
    end;
    let flush = !stalled_cycles >= patience in
    if flush then stalled_cycles := 0;
    let sends =
      List.filter_map
        (fun p -> if live p then Some (Dsim.Step.Send p) else None)
        (List.init n (fun i -> i))
    in
    let mailbox = Dsim.Engine.mailbox config in
    let estimate_of p = observations.(p).Dsim.Obs.estimate in
    (* Per destination holding estimate [b]: let through the votes of
       all [b]-holders plus just enough opposite-estimate origins to
       reach the [n - t] quorum; defer everything else carrying the
       opposite vote, wherever it travels (origin-based, so relayed
       echoes and readies of a deferred vote are deferred too). *)
    let allowed_opposite dst =
      match estimate_of dst with
      | None -> `All
      | Some b ->
          let holders value =
            List.filter
              (fun p -> Dsim.Obs.estimate_is observations.(p) value)
              (List.init n (fun i -> i))
          in
          let own = List.length (holders b) in
          let allow = max 0 (n - t - own) in
          `Allow (b, List.filteri (fun i _ -> i < allow) (holders (not b)))
    in
    let delivers =
      List.concat_map
        (fun dst ->
          if not (live dst) then []
          else begin
            let policy = allowed_opposite dst in
            let dst_round = observations.(dst).Dsim.Obs.round in
            Dsim.Mailbox.pending_for mailbox ~dst
            |> List.filter_map (fun e ->
                   let payload = e.Dsim.Envelope.payload in
                   let current =
                     match protocol.Dsim.Protocol.message_round payload with
                     | Some r -> r >= dst_round
                     | None -> true
                   in
                   let origin =
                     match protocol.Dsim.Protocol.message_origin payload with
                     | Some o -> o
                     | None -> e.Dsim.Envelope.src
                   in
                   let defer =
                     (not flush) && current
                     &&
                     match (policy, protocol.Dsim.Protocol.message_bit payload) with
                     | `All, _ | _, None -> false
                     | `Allow (b, allowed), Some bit ->
                         bit <> b && not (List.mem origin allowed)
                   in
                   if defer then None else Some (Dsim.Step.Deliver e.Dsim.Envelope.id))
          end)
        (List.init n (fun i -> i))
    in
    sends @ delivers
  in
  fun config ->
    if Queue.is_empty queue then List.iter (fun s -> Queue.add s queue) (plan config);
    if Queue.is_empty queue then None else Some (Queue.pop queue)
