let windowed () =
  fun config -> Some (Strategy.cached_uniform ~n:(Dsim.Engine.n config) ())

(* Agenda-driven step strategies: when the queue empties, plan the next
   full cycle based on the current configuration. *)
let agenda_strategy plan =
  let queue = Queue.create () in
  fun config ->
    if Queue.is_empty queue then List.iter (fun s -> Queue.add s queue) (plan config);
    if Queue.is_empty queue then None else Some (Queue.pop queue)

let live_pids config =
  let n = Dsim.Engine.n config in
  List.filter (fun p -> not (Dsim.Engine.crashed config p)) (List.init n (fun i -> i))

let lockstep () =
  agenda_strategy (fun config ->
      let sends = List.map (fun p -> Dsim.Step.Send p) (live_pids config) in
      let delivers =
        List.map
          (fun id -> Dsim.Step.Deliver id)
          (Dsim.Mailbox.pending_ids (Dsim.Engine.mailbox config))
      in
      sends @ delivers)

let random_fair ~seed ~drop_probability () =
  let rng = Prng.Stream.root seed in
  agenda_strategy (fun config ->
      let sends = List.map (fun p -> Dsim.Step.Send p) (live_pids config) in
      let delivers =
        List.filter_map
          (fun id ->
            if Prng.Stream.bernoulli rng drop_probability then None
            else Some (Dsim.Step.Deliver id))
          (Dsim.Mailbox.pending_ids (Dsim.Engine.mailbox config))
      in
      sends @ delivers)
