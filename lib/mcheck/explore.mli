(** Bounded exhaustive exploration of the dsim kernel under the
    Definition-1 adversary.

    Every node of the search tree is a configuration reached by a
    schedule (an array of {!Menu} indices); every edge applies one menu
    choice through [Engine.apply_window].  Agreement, validity and the
    quorum rule are checked on every candidate edge {e before}
    deduplication, so pruned edges are still audited; the shortest
    (then lexicographically least) violating schedule is reported as
    the minimal counterexample and replays deterministically. *)

type window_family = [ `Uniform | `Full ]
type inputs_spec = All | Split | Unanimous of bool | Vector of bool array
type order = Bfs | Dfs

type sharder = {
  run :
    'a 'b.
    jobs:int ->
    merge:('b -> 'b -> 'b) ->
    init:'b ->
    f:('a -> 'b) ->
    'a array ->
    'b;
}
(** How one BFS layer fans out.  The contract is Par_sweep's: an
    in-order left fold of [merge] over per-item results, so outcomes
    are bit-identical for every [jobs].  The library only ships
    {!sequential_sharder}; [Agreement.Mcheck_bridge.sharder] plugs in
    the real domain pool (injected to keep this library off Domain). *)

val sequential_sharder : sharder

type options = {
  n : int;
  t : int;
  depth : int;
  family : window_family;
  corrupt : int;  (** sources [0..corrupt-1] get the tamper menu *)
  pinned : int;
      (** pids [0..pinned-1] are protocol-distinguished (an RBC
          origin): symmetries must fix them pointwise *)
  inputs : inputs_spec;
  seed : int;
  quorum : int;  (** distinct-sender census required before deciding *)
  symmetry : bool;
  dedup : bool;
  audit : bool;  (** additionally run [Trace_lint] on every candidate *)
  order : order;
  max_states : int option;  (** per-root budget; [None] = unbounded *)
  jobs : int;
  sharder : sharder;
  collect : bool;
      (** keep canonical state ids and ([dedup = false]) schedules *)
}

val default_options : n:int -> t:int -> quorum:int -> options
(** Depth 3, uniform windows, no corruption, all input vectors,
    symmetry and dedup on, BFS, a 1M-state budget, sequential. *)

type kind = Agreement | Validity | Quorum | Audit

val kind_id : kind -> string

type violation = {
  kind : kind;
  root : int;
  root_inputs : bool array;
  vdepth : int;
  schedule : int array;
  detail : string;
}

type root_stats = {
  root_index : int;
  inputs_bits : bool array;
  group_order : int;
  states : int;
  candidates : int;
  dedup_hits : int;
  symmetry_hits : int;
  layers : int list;
  bounded : bool;
}

type result = {
  protocol_name : string;
  opts : options;
  menu_size : int;
  roots : root_stats list;
  roots_collapsed : int;
  violations : violation list;
      (** sorted shortest-first, capped at 25 entries *)
  violations_total : int;
  total_states : int;
  total_candidates : int;
  total_dedup_hits : int;
  total_symmetry_hits : int;
  bounded : bool;
  canonical : string list;
  schedules : int array list;
}

val inputs_string : bool array -> string
(** ["010"]-style rendering, processor 0 leftmost. *)

val compare_violation : violation -> violation -> int
(** Orders by (depth, root index, lexicographic schedule): the minimal
    counterexample is the least element. *)

val run :
  protocol:('s, 'm) Dsim.Protocol.t ->
  valid:(inputs:bool array -> corrupt:int -> bool -> bool) ->
  options ->
  result
(** Explore every root.  Raises [Invalid_argument] on out-of-range
    bounds ([n > 16], [t >= n], [corrupt > t]). *)

type replay_line = {
  window : int;
  choice : string;
  new_decisions : (int * bool) list;
}

type replay_report = {
  lines : replay_line list;
  final_decisions : (int * bool) list;
  conflict : bool;
  audit_violations : string list;
}

val replay_schedule :
  protocol:('s, 'm) Dsim.Protocol.t ->
  opts:options ->
  inputs:bool array ->
  int array ->
  replay_report
(** Deterministically re-execute a schedule with full event recording
    and the trace auditor — the independent second opinion on a
    violation found by the incremental checks. *)

val schedule_state :
  protocol:('s, 'm) Dsim.Protocol.t ->
  opts:options ->
  inputs:bool array ->
  int array ->
  string
(** The canonical state id (hex) the schedule lands on — the
    containment probe used by the exhaustiveness qcheck: it must be a
    member of a collecting run's [canonical] list. *)
