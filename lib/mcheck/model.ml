(* The checkable-model registry: each entry packs a protocol with the
   safety predicate the explorer enforces on it — the decision quorum
   and the validity rule — plus instantiability checks, so the CLI,
   the tests and the repro table all drive the same definitions.

   Mutants live here too.  A mutant is the same protocol with one
   threshold broken (the classic mutation-testing move); the explorer
   must find a minimal violating schedule for each, which is the
   negative control proving the checker can actually see bugs. *)

type packed = Packed : ('s, 'm) Dsim.Protocol.t -> packed

type t = {
  name : string;
  describe : string;
  mutant : bool;
  packed : packed;
  quorum : n:int -> t:int -> int;
  valid : inputs:bool array -> corrupt:int -> bool -> bool;
  feasible : n:int -> t:int -> (unit, string) result;
  notes : n:int -> t:int -> corrupt:int -> string list;
  pinned : int;
      (* protocol-distinguished pid prefix (an RBC origin): the symmetry
         reduction must fix these pids pointwise, see Explore.options *)
}

(* Binary consensus validity: a decided value must be some non-corrupt
   processor's input (corrupt sources are the prefix [0, corrupt)). *)
let consensus_valid ~inputs ~corrupt v =
  let n = Array.length inputs in
  let ok = ref false in
  for i = corrupt to n - 1 do
    if Bool.equal inputs.(i) v then ok := true
  done;
  !ok

(* Reliable-broadcast validity: whatever is accepted for a correct
   origin's instance must be the origin's input; a corrupt origin may
   get anything accepted. *)
let rbc_valid ~origin ~inputs ~corrupt v =
  origin < corrupt || Bool.equal inputs.(origin) v

let ok_if cond msg = if cond then Ok () else Error msg

let no_notes ~n:_ ~t:_ ~corrupt:_ = []

let resilience_notes ~crash ~byz ~name ~n ~t ~corrupt =
  List.concat
    [
      (if t > crash n then
         [
           Printf.sprintf
             "t = %d exceeds %s's tolerated silencing bound %d at n = %d; \
              violations may be genuine protocol behaviour"
             t name (crash n) n;
         ]
       else []);
      (if corrupt > 0 && corrupt > byz n then
         [
           Printf.sprintf
             "%d corrupt source(s) exceed %s's Byzantine resilience %d at \
              n = %d; violations may be genuine protocol behaviour"
             corrupt name (byz n) n;
         ]
       else []);
    ]

let ben_or_like ~name ~mutant ~describe protocol =
  {
    name;
    describe;
    mutant;
    packed = Packed protocol;
    quorum = (fun ~n ~t -> n - t);
    valid = consensus_valid;
    feasible =
      (fun ~n ~t ->
        ok_if (n >= (2 * t) + 1)
          (Printf.sprintf
             "ben-or's majority logic needs n >= 2t + 1 (got n = %d, t = %d)" n
             t));
    notes =
      resilience_notes ~name
        ~crash:(fun n -> (n - 1) / 2)
        ~byz:(fun n -> (n - 1) / 5);
    pinned = 0;
  }

let bracha_like ~name ~mutant ~describe protocol =
  {
    name;
    describe;
    mutant;
    packed = Packed protocol;
    quorum = (fun ~n:_ ~t -> (2 * t) + 1);
    valid = consensus_valid;
    (* Bracha instantiates and runs below n = 3t + 1; exceeding the
       resilience bound is reported through [notes], not an error, so
       the explorer can probe such points deliberately. *)
    feasible = (fun ~n ~t -> ok_if (n >= t + 1) "bracha needs n >= t + 1");
    notes =
      resilience_notes ~name
        ~crash:(fun n -> (n - 1) / 3)
        ~byz:(fun n -> (n - 1) / 3);
    pinned = 0;
  }

let rbc_like ~name ~mutant ~describe protocol =
  {
    name;
    describe;
    mutant;
    packed = Packed protocol;
    quorum = (fun ~n:_ ~t -> (2 * t) + 1);
    valid = rbc_valid ~origin:0;
    feasible = (fun ~n:_ ~t:_ -> Ok ());
    notes =
      resilience_notes ~name
        ~crash:(fun n -> (n - 1) / 3)
        ~byz:(fun n -> (n - 1) / 3);
    pinned = 1;
  }

let all =
  [
    ben_or_like ~name:"ben-or" ~mutant:false
      ~describe:"Ben-Or binary consensus (decide on t+1 matching proposals)"
      (Protocols.Ben_or.protocol ());
    bracha_like ~name:"bracha" ~mutant:false
      ~describe:"Bracha agreement over reliable broadcast"
      (Protocols.Bracha.protocol ());
    {
      name = "lewko";
      describe = "the paper's Section 3 variant (Theorem 4 thresholds)";
      mutant = false;
      packed = Packed (Protocols.Lewko_variant.protocol ());
      quorum = (fun ~n ~t -> n - (2 * t));
      valid = consensus_valid;
      feasible =
        (fun ~n ~t ->
          ok_if
            (Protocols.Thresholds.feasible ~n ~t)
            (Printf.sprintf
               "no valid thresholds: lewko needs t < n / 6 (got n = %d, \
                t = %d; try --t 0)"
               n t));
      notes = no_notes;
      pinned = 0;
    };
    rbc_like ~name:"rbc" ~mutant:false
      ~describe:"a single reliable-broadcast instance (origin 0)"
      (Protocols.Rbc_once.protocol ());
    ben_or_like ~name:"ben-or!quorum-1" ~mutant:true
      ~describe:"MUTANT: Ben-Or deciding on a single matching proposal"
      (Protocols.Ben_or.protocol ~name:"ben-or!quorum-1"
         ~decide_quorum:(fun ~n:_ ~t:_ -> 1)
         ());
    bracha_like ~name:"bracha!quorum-t" ~mutant:true
      ~describe:
        "MUTANT: Bracha with every 2t+1-style quorum (validated echoes, \
         readies, accepts, matching Dec votes) lowered to t"
      (Protocols.Bracha.protocol ~name:"bracha!quorum-t"
         ~decide_quorum:(fun ~n:_ ~t -> max 1 t)
         ~rbc_echo_quorum:(fun ~n:_ ~t -> max 1 t)
         ~rbc_ready_resend:(fun ~n:_ ~t -> max 1 t)
         ~rbc_accept_quorum:(fun ~n:_ ~t -> max 1 t)
         ());
    rbc_like ~name:"rbc!quorum-t" ~mutant:true
      ~describe:
        "MUTANT: reliable broadcast going ready on one echo and accepting \
         on t readies"
      (Protocols.Rbc_once.protocol ~name:"rbc!quorum-t"
         ~rbc_ready_resend:(fun ~n:_ ~t:_ -> 1)
         ~rbc_accept_quorum:(fun ~n:_ ~t -> max 1 t)
         ());
  ]

let names = List.map (fun m -> m.name) all
let find name = List.find_opt (fun m -> String.equal m.name name) all

let options m ~n ~t =
  { (Explore.default_options ~n ~t ~quorum:(m.quorum ~n ~t)) with
    Explore.pinned = m.pinned }

let run m (opts : Explore.options) =
  (match m.feasible ~n:opts.Explore.n ~t:opts.Explore.t with
  | Ok () -> ()
  | Error e -> invalid_arg ("Mcheck.Model.run: " ^ e));
  match m.packed with
  | Packed protocol -> Explore.run ~protocol ~valid:m.valid opts

let replay m (opts : Explore.options) ~inputs schedule =
  match m.packed with
  | Packed protocol -> Explore.replay_schedule ~protocol ~opts ~inputs schedule

let schedule_state m (opts : Explore.options) ~inputs schedule =
  match m.packed with
  | Packed protocol -> Explore.schedule_state ~protocol ~opts ~inputs schedule
