(* The adversary's per-window choice menu: the alphabet the bounded
   explorer enumerates schedules over.  A menu is a deterministic
   function of (n, t, window family, corruption budget), independent of
   protocol state, so a schedule is just an array of menu indices —
   compact to store in frontiers and trivially replayable.

   Closure under pid permutation matters: the symmetry reduction
   identifies configurations up to a permutation group G, which is
   sound only if permuting every choice of a schedule lands back inside
   the menu (otherwise a deduplicated node's subtree would not be a
   relabeling of the representative's subtree).  Both window families
   are closed under all of S_n, and the corruption menu enumerates
   every destination bit-mask, so it is closed too; G is then only
   restricted by the input vector and the corrupt set. *)

type tamper = { src : int; mask : int }
(* Rewrite every fresh message from [src]: destination [d] receives the
   payload with its bit forced to [(mask lsr d) land 1].  mask = 0 and
   mask = 2^n - 1 are the consistent rewrites; anything in between is
   equivocation. *)

type choice = {
  index : int;  (* position in [choices]; -1 for permuted images *)
  window : Dsim.Window.t;
  recv_masks : int array;  (* recv_masks.(dst) has bit src iff src in S_dst *)
  resets : int list;
  tamper : tamper option;
}

type t = {
  n : int;
  fault_bound : int;
  family : [ `Uniform | `Full ];
  corrupt : int;
  choices : choice array;
}

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let bits_of_mask ~n m =
  List.filter (fun p -> (m lsr p) land 1 = 1) (List.init n (fun i -> i))

(* Ascending subset masks of [0, n) with popcount <= k. *)
let subsets_le ~n k =
  List.filter (fun m -> popcount m <= k) (List.init (1 lsl n) (fun m -> m))

(* Ascending receive-set masks: popcount >= n - t. *)
let receive_masks ~n ~t =
  List.filter (fun m -> popcount m >= n - t) (List.init (1 lsl n) (fun m -> m))

(* Menu receive sets are already int masks (n <= 62), so windows go
   straight to the bitset ground truth — no intermediate pid lists. *)
let window_of_masks ~n recv resets_mask =
  let masks = Array.map (fun m -> Dsim.Bitset.of_int_mask ~capacity:n m) recv in
  let resets = bits_of_mask ~n resets_mask in
  (Dsim.Window.of_masks ~resets masks, resets)

(* All (receive-mask vector, reset mask) pairs of a family, in a fixed
   deterministic order: receive choices lexicographic by processor (S_0
   most significant), reset masks ascending within each. *)
let window_menu ~n ~t family =
  match family with
  | `Uniform ->
      let silenced = subsets_le ~n t in
      let resets = subsets_le ~n t in
      List.concat_map
        (fun sm ->
          let full = (1 lsl n) - 1 in
          let recv = Array.make n (full land lnot sm) in
          List.map (fun rm -> (recv, rm)) resets)
        silenced
  | `Full ->
      let per = receive_masks ~n ~t in
      let resets = subsets_le ~n t in
      let rec tuples i =
        if i >= n then [ [] ]
        else
          let rest = tuples (i + 1) in
          List.concat_map (fun m -> List.map (fun tl -> m :: tl) rest) per
      in
      List.concat_map
        (fun tup ->
          let recv = Array.of_list tup in
          List.map (fun rm -> (recv, rm)) resets)
        (tuples 0)

(* None first, then per corrupt source ascending, every destination
   mask ascending. *)
let tamper_menu ~n ~corrupt =
  None
  :: List.concat_map
       (fun src -> List.map (fun mask -> Some { src; mask }) (List.init (1 lsl n) (fun m -> m)))
       (List.init corrupt (fun s -> s))

let build ~n ~t ~family ~corrupt =
  if n <= 0 || n > 62 then invalid_arg "Menu.build: n out of range";
  if t < 0 || t >= n then invalid_arg "Menu.build: t out of range";
  if corrupt < 0 || corrupt > n then invalid_arg "Menu.build: corrupt out of range";
  let tampers = tamper_menu ~n ~corrupt in
  let choices =
    window_menu ~n ~t family
    |> List.concat_map (fun (recv, rm) ->
           let window, resets = window_of_masks ~n recv rm in
           List.map
             (fun tamper ->
               { index = -1; window; recv_masks = Array.copy recv; resets; tamper })
             tampers)
    |> Array.of_list
  in
  Array.iteri (fun i c -> choices.(i) <- { c with index = i }) choices;
  { n; fault_bound = t; family; corrupt; choices }

let size menu = Array.length menu.choices
let choice menu i = menu.choices.(i)

let validate_all menu =
  Array.for_all
    (fun c ->
      match Dsim.Window.validate ~n:menu.n ~t:menu.fault_bound c.window with
      | Ok () -> true
      | Error _ -> false)
    menu.choices

(* The image of a choice under pid permutation [pi] (an array:
   pi.(i) is where processor i goes).  Windows: S'_{pi(d)} = pi(S_d),
   resets and corrupt sources mapped pointwise, destination masks
   permuted bitwise. *)
let permute_bits pi m =
  let out = ref 0 in
  Array.iteri (fun i pi_i -> if (m lsr i) land 1 = 1 then out := !out lor (1 lsl pi_i)) pi;
  !out

let permute_choice ~n pi c =
  let recv = Array.make n 0 in
  Array.iteri (fun d m -> recv.(pi.(d)) <- permute_bits pi m) c.recv_masks;
  let window, resets =
    window_of_masks ~n recv
      (List.fold_left (fun acc p -> acc lor (1 lsl pi.(p))) 0 c.resets)
  in
  {
    index = -1;
    window;
    recv_masks = recv;
    resets;
    tamper =
      Option.map
        (fun { src; mask } -> { src = pi.(src); mask = permute_bits pi mask })
        c.tamper;
  }

let pp_choice ppf c =
  let set_of m =
    String.concat "" (List.map string_of_int (bits_of_mask ~n:62 m))
  in
  let sets = Array.to_list (Array.map set_of c.recv_masks) in
  let uniform =
    match sets with [] -> true | s :: rest -> List.for_all (String.equal s) rest
  in
  (if uniform then
     Format.fprintf ppf "S={%s}" (match sets with [] -> "" | s :: _ -> s)
   else
     Format.fprintf ppf "S=[%s]" (String.concat "|" sets));
  Format.fprintf ppf " R={%s}"
    (String.concat "" (List.map string_of_int c.resets));
  match c.tamper with
  | None -> ()
  | Some { src; mask } ->
      Format.fprintf ppf " corrupt(src=%d,bits=%s)" src (set_of mask)

let choice_to_string c = Format.asprintf "%a" pp_choice c
