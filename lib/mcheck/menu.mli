(** The adversary's per-window choice menu: the finite alphabet the
    bounded explorer enumerates schedules over.  A menu is a pure
    function of [(n, t, family, corrupt)] — no protocol state — so a
    schedule is just an array of menu indices, compact to store in
    frontiers and trivially replayable.

    Both window families and the corruption menu are closed under pid
    permutation, which the symmetry reduction in {!Explore} relies on
    (the orbit of an in-menu schedule must stay in-menu). *)

type tamper = { src : int; mask : int }
(** Rewrite every message emitted by [src] during the window:
    destination [d] receives the payload with its bit forced to
    [(mask lsr d) land 1].  [mask = 0] and [mask = 2^n - 1] are the
    consistent rewrites; anything in between is equivocation. *)

type choice = {
  index : int;  (** position in [choices]; [-1] for permuted images *)
  window : Dsim.Window.t;
  recv_masks : int array;
      (** [recv_masks.(dst)] has bit [src] set iff [src] is in [S_dst] *)
  resets : int list;
  tamper : tamper option;
}

type t = {
  n : int;
  fault_bound : int;
  family : [ `Uniform | `Full ];
  corrupt : int;
  choices : choice array;
}

val build :
  n:int -> t:int -> family:[ `Uniform | `Full ] -> corrupt:int -> t
(** The full menu in a fixed deterministic order.  [`Uniform] pairs
    every silenced set (popcount [<= t], shared receive set) with every
    reset set; [`Full] enumerates independent per-processor receive
    masks of popcount [>= n - t].  Each window is then paired with
    every tamper: [None] first, then per corrupt source ascending,
    destination masks ascending. *)

val size : t -> int

val choice : t -> int -> choice
(** [choice menu i] is the [i]-th entry; raises on out-of-range. *)

val validate_all : t -> bool
(** Every window in the menu passes {!Dsim.Window.validate} — i.e. the
    menu enumerates only Definition-1-acceptable windows. *)

val permute_bits : int array -> int -> int
(** [permute_bits pi m] relabels a pid bit-mask: bit [i] of [m] becomes
    bit [pi.(i)]. *)

val permute_choice : n:int -> int array -> choice -> choice
(** The image of a choice under a pid permutation: receive sets,
    resets, and the tamper's source and destination mask are all
    relabeled.  The result is always an element of the same menu
    (closure), with [index = -1]. *)

val pp_choice : Format.formatter -> choice -> unit

val choice_to_string : choice -> string
(** Renders like ["S={012} R={} corrupt(src=0,bits=1)"] — the notation
    used in counterexample timelines. *)
