(* Bounded exhaustive exploration of the dsim kernel under the
   Definition-1 adversary: every node of the search tree is a
   configuration reached by a schedule (an array of Menu indices), and
   every edge applies one menu choice through [Engine.apply_window].

   Design notes, load-bearing for soundness:

   - Nodes are stored as schedules, not engines: expansion replays the
     parent from the root (depth window applications), which keeps the
     frontier small enough to hold millions of nodes.

   - The deduplication key is [Engine.config_fingerprint] extended with
     each processor's cumulative distinct-sender census.  The census is
     the one piece of history the safety invariants depend on (the
     quorum rule: nobody decides before hearing from [quorum] distinct
     senders), so two nodes merge only when both their configurations
     and their quorum obligations coincide.  Invariants are checked on
     every candidate edge *before* the dedup drop, so pruned edges are
     still audited.

   - Symmetry reduction runs twin engines: for each permutation pi in
     the group G (all pid permutations fixing the root input vector and
     the corrupt-source set), the pi-relabeled schedule is replayed and
     the canonical key is the minimum rendering over the orbit.  This
     is sound because [Engine.reseed_shared] gives every processor an
     identical coin stream (safety must hold for correlated coins too,
     and correlated coins make configurations permutation-equivariant)
     and because the menu is closed under G (see menu.ml).

   - Exploration is deterministic by construction: BFS layers expand
     through the injected sharder (Par_sweep's in-order merge), children
     are generated in menu order, and every counter/violation is merged
     in slot order — so results are bit-identical across -j 1 / -j 2. *)

type window_family = [ `Uniform | `Full ]
type inputs_spec = All | Split | Unanimous of bool | Vector of bool array
type order = Bfs | Dfs

type sharder = {
  run :
    'a 'b.
    jobs:int ->
    merge:('b -> 'b -> 'b) ->
    init:'b ->
    f:('a -> 'b) ->
    'a array ->
    'b;
}

let sequential_sharder =
  {
    run =
      (fun ~jobs:_ ~merge ~init ~f items ->
        Array.fold_left (fun acc x -> merge acc (f x)) init items);
  }

type options = {
  n : int;
  t : int;
  depth : int;
  family : window_family;
  corrupt : int;  (* sources 0..corrupt-1 are subject to the tamper menu *)
  pinned : int;  (* pids 0..pinned-1 are protocol-distinguished (e.g. an
                    RBC origin): symmetries must fix them pointwise *)
  inputs : inputs_spec;
  seed : int;
  quorum : int;  (* distinct-sender census required before deciding *)
  symmetry : bool;
  dedup : bool;
  audit : bool;  (* additionally run Trace_lint on every candidate *)
  order : order;
  max_states : int option;  (* per-root visited budget; None = unbounded *)
  jobs : int;
  sharder : sharder;
  collect : bool;  (* keep canonical state ids and (dedup=false) schedules *)
}

let default_options ~n ~t ~quorum =
  {
    n;
    t;
    depth = 3;
    family = `Uniform;
    corrupt = 0;
    pinned = 0;
    inputs = All;
    seed = 1;
    quorum;
    symmetry = true;
    dedup = true;
    audit = false;
    order = Bfs;
    max_states = Some 1_000_000;
    jobs = 1;
    sharder = sequential_sharder;
    collect = false;
  }

type kind = Agreement | Validity | Quorum | Audit

let kind_id = function
  | Agreement -> "agreement"
  | Validity -> "validity"
  | Quorum -> "quorum"
  | Audit -> "audit"

type violation = {
  kind : kind;
  root : int;  (* index into [roots] of the run *)
  root_inputs : bool array;
  vdepth : int;
  schedule : int array;
  detail : string;
}

type root_stats = {
  root_index : int;
  inputs_bits : bool array;
  group_order : int;
  states : int;
  candidates : int;
  dedup_hits : int;
  symmetry_hits : int;
  layers : int list;  (* BFS frontier sizes, depth 0 first; [] for DFS *)
  bounded : bool;
}

type result = {
  protocol_name : string;
  opts : options;
  menu_size : int;
  roots : root_stats list;
  roots_collapsed : int;  (* input vectors skipped as symmetric images *)
  violations : violation list;  (* sorted: shortest (then lex-least) first *)
  violations_total : int;  (* before capping the stored list *)
  total_states : int;
  total_candidates : int;
  total_dedup_hits : int;
  total_symmetry_hits : int;
  bounded : bool;
  canonical : string list;  (* collect: sorted canonical state ids (hex) *)
  schedules : int array list;  (* collect && not dedup: exploration order *)
}

let bit b = if b then '1' else '0'
let inputs_string v = String.init (Array.length v) (fun i -> bit v.(i))

let compare_schedule a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i >= la then 0
      else match Int.compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
    in
    go 0

let compare_violation a b =
  match Int.compare a.vdepth b.vdepth with
  | 0 -> (
      match Int.compare a.root b.root with
      | 0 -> compare_schedule a.schedule b.schedule
      | c -> c)
  | c -> c

(* {2 Permutation group} *)

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
      List.concat_map
        (fun x ->
          List.map (fun rest -> x :: rest)
            (permutations (List.filter (fun y -> y <> x) xs)))
        xs

let all_perms n =
  List.map Array.of_list (permutations (List.init n (fun i -> i)))

let is_identity pi =
  let ok = ref true in
  Array.iteri (fun i x -> if i <> x then ok := false) pi;
  !ok

(* pi is a symmetry of the root iff relabeling preserves the input
   vector, maps the corrupt-source prefix to itself, and fixes every
   protocol-distinguished pid pointwise (a permutation that moves an
   RBC origin relabels to a run of a *different* protocol, so it is not
   a symmetry of the dynamics). *)
let fixes_root ~inputs ~corrupt ~pinned pi =
  let ok = ref true in
  Array.iteri
    (fun i pi_i ->
      if Bool.equal inputs.(pi_i) inputs.(i) |> not then ok := false;
      if i < corrupt && pi_i >= corrupt then ok := false;
      if i < pinned && pi_i <> i then ok := false)
    pi;
  !ok

let root_group ~inputs ~corrupt ~pinned n =
  List.filter (fixes_root ~inputs ~corrupt ~pinned) (all_perms n)

(* Orbit-minimal representatives of input vectors under the permutations
   that fix the corrupt prefix (used by [All] roots). *)
let permute_inputs pi v =
  let out = Array.make (Array.length v) false in
  Array.iteri (fun i pi_i -> out.(pi_i) <- v.(i)) pi;
  out

let is_canonical_root perms v =
  let sv = inputs_string v in
  List.for_all
    (fun pi -> String.compare (inputs_string (permute_inputs pi v)) sv >= 0)
    perms

(* {2 Engine driving} *)

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let emitters ~protocol e =
  let n = Dsim.Engine.n e in
  let em = Array.make n 0 in
  for p = 0 to n - 1 do
    let _, sends = protocol.Dsim.Protocol.outgoing (Dsim.Engine.state e p) in
    List.iter
      (fun send ->
        match send with
        | Dsim.Step.Unicast (dst, _) -> em.(dst) <- em.(dst) lor (1 lsl p)
        | Dsim.Step.Broadcast _ ->
            for d = 0 to n - 1 do
              em.(d) <- em.(d) lor (1 lsl p)
            done)
      sends
  done;
  em

let apply_tamper ~protocol e (tam : Menu.tamper) ~from_id ~til_id =
  let mb = Dsim.Engine.mailbox e in
  let hits = ref [] in
  Dsim.Mailbox.iter_ids_in_range mb ~from:from_id ~til:til_id (fun id ->
      hits := id :: !hits);
  List.iter
    (fun id ->
      match Dsim.Mailbox.find mb id with
      | None -> ()
      | Some env ->
          if env.Dsim.Envelope.src = tam.Menu.src then
            let bitv = (tam.Menu.mask lsr env.Dsim.Envelope.dst) land 1 = 1 in
            (match
               protocol.Dsim.Protocol.rewrite_bit env.Dsim.Envelope.payload bitv
             with
            | None -> ()
            | Some payload ->
                Dsim.Engine.apply e (Dsim.Step.Corrupt (id, payload))))
    (List.rev !hits)

(* Apply one menu choice and fold the window's actual deliveries into
   the census: processor [dst] hears from exactly the emitters of this
   window intersected with its receive set. *)
let apply_choice ~protocol e census (c : Menu.choice) =
  let em = emitters ~protocol e in
  (match c.Menu.tamper with
  | None -> Dsim.Engine.apply_window e c.Menu.window
  | Some tam ->
      Dsim.Engine.apply_window e
        ~tamper:(fun ~from_id ~til_id ->
          apply_tamper ~protocol e tam ~from_id ~til_id)
        c.Menu.window);
  Array.iteri
    (fun dst m -> census.(dst) <- census.(dst) lor (em.(dst) land m))
    c.Menu.recv_masks

let make_root ~protocol ~opts ~inputs =
  let e =
    Dsim.Engine.init ~protocol ~n:opts.n ~fault_bound:opts.t ~inputs
      ~seed:opts.seed ~record_events:opts.audit ()
  in
  Dsim.Engine.reseed_shared e (Prng.Stream.root opts.seed);
  e

let replay ~protocol ~opts ~inputs ~choices (schedule : int array) =
  let e = make_root ~protocol ~opts ~inputs in
  let census = Array.make opts.n 0 in
  Array.iter
    (fun ci -> apply_choice ~protocol e census choices.(ci))
    schedule;
  (e, census)

let node_key ~opts e census =
  let b = Buffer.create 256 in
  Buffer.add_string b (Dsim.Engine.config_fingerprint e);
  Buffer.add_char b '#';
  Array.iter
    (fun m ->
      Buffer.add_string b (string_of_int m);
      Buffer.add_char b '.')
    census;
  ignore opts;
  Buffer.contents b

(* {2 Invariant checks (per candidate edge)} *)

let check_child ~protocol ~opts ~valid ~inputs ~before_outputs child census =
  ignore protocol;
  let viols = ref [] in
  let n = opts.n in
  if Dsim.Engine.decision_conflict child then begin
    let rendered =
      Dsim.Engine.decided_values child
      |> List.map (fun (p, v) -> Printf.sprintf "%d=%c" p (bit v))
      |> String.concat ","
    in
    viols := (Agreement, "conflicting outputs: " ^ rendered) :: !viols
  end;
  for p = n - 1 downto 0 do
    match (before_outputs.(p), Dsim.Engine.output child p) with
    | None, Some v ->
        if not (valid ~inputs ~corrupt:opts.corrupt v) then
          viols :=
            ( Validity,
              Printf.sprintf "processor %d decided %c, invalid for inputs %s" p
                (bit v) (inputs_string inputs) )
            :: !viols;
        let heard = popcount census.(p) in
        if heard < opts.quorum then
          viols :=
            ( Quorum,
              Printf.sprintf
                "processor %d decided having heard from %d senders; quorum is %d"
                p heard opts.quorum )
            :: !viols
    | _ -> ()
  done;
  if opts.audit then begin
    let audit_viols =
      Lintkit.Trace_lint.audit ~decision_quorum:opts.quorum child
    in
    List.iter
      (fun v ->
        viols :=
          (Audit, Format.asprintf "%a" Lintkit.Trace_lint.pp_violation v)
          :: !viols)
      audit_viols
  end;
  !viols

(* {2 Expansion} *)

type child_rec = {
  digest : string;  (* dedup key digest *)
  canonical_hex : string;  (* canonical state id (= digest hex if no symmetry) *)
  cschedule : int array;
  symmetry_hit : bool;
}

type partial = {
  children_rev : child_rec list;
  pcands : int;
  psym : int;
  pviols_rev : (kind * int array * string) list;
}

let empty_partial = { children_rev = []; pcands = 0; psym = 0; pviols_rev = [] }

let merge_partial acc b =
  {
    children_rev = b.children_rev @ acc.children_rev;
    pcands = acc.pcands + b.pcands;
    psym = acc.psym + b.psym;
    pviols_rev = b.pviols_rev @ acc.pviols_rev;
  }

(* Expand one parent: replay it (and its twins), then try every menu
   choice.  Pure with respect to shared state, so the sharder may run
   it on any domain. *)
let expand_parent ~protocol ~opts ~valid ~inputs ~menu ~pmenus schedule =
  let choices = menu.Menu.choices in
  let main, census = replay ~protocol ~opts ~inputs ~choices schedule in
  let before_outputs =
    Array.init opts.n (fun p -> Dsim.Engine.output main p)
  in
  let twins =
    List.map
      (fun pchoices ->
        let te, tc = replay ~protocol ~opts ~inputs ~choices:pchoices schedule in
        (pchoices, te, tc))
      pmenus
  in
  let want_canonical = opts.symmetry || opts.collect in
  let acc = ref empty_partial in
  for ci = 0 to Array.length choices - 1 do
    let child = Dsim.Engine.copy main in
    let ccensus = Array.copy census in
    apply_choice ~protocol child ccensus choices.(ci);
    let cschedule = Array.append schedule [| ci |] in
    let viols =
      check_child ~protocol ~opts ~valid ~inputs ~before_outputs child ccensus
    in
    let raw = node_key ~opts child ccensus in
    let canonical =
      if not want_canonical then raw
      else
        List.fold_left
          (fun best (pchoices, te, tc) ->
            let tchild = Dsim.Engine.copy te in
            let tcc = Array.copy tc in
            apply_choice ~protocol tchild tcc pchoices.(ci);
            let k = node_key ~opts tchild tcc in
            if String.compare k best < 0 then k else best)
          raw twins
    in
    let symmetry_hit = want_canonical && not (String.equal canonical raw) in
    let dedup_key = if opts.symmetry then canonical else raw in
    let rec_ =
      {
        digest = Digest.string dedup_key;
        canonical_hex = Digest.to_hex (Digest.string canonical);
        cschedule;
        symmetry_hit;
      }
    in
    acc :=
      {
        children_rev = rec_ :: !acc.children_rev;
        pcands = !acc.pcands + 1;
        psym = (!acc.psym + if symmetry_hit then 1 else 0);
        pviols_rev =
          List.rev_append
            (List.map (fun (k, d) -> (k, cschedule, d)) viols)
            !acc.pviols_rev;
      }
  done;
  !acc

(* {2 Per-root drivers} *)

type root_outcome = {
  stats : root_stats;
  rviolations : (kind * int array * string) list;  (* in discovery order *)
  rcanonical : string list;
  rschedules : int array list;
}

let permuted_menus ~opts ~group menu =
  List.filter_map
    (fun pi ->
      if is_identity pi then None
      else Some (Array.map (Menu.permute_choice ~n:opts.n pi) menu.Menu.choices))
    group

let explore_root_bfs ~protocol ~opts ~valid ~menu ~root_index ~inputs =
  let group = root_group ~inputs ~corrupt:opts.corrupt ~pinned:opts.pinned opts.n in
  let pmenus =
    if opts.symmetry || opts.collect then permuted_menus ~opts ~group menu
    else []
  in
  let visited = Hashtbl.create 4096 in
  let canonical_seen = Hashtbl.create 4096 in
  let note_canonical h =
    if opts.collect && not (Hashtbl.mem canonical_seen h) then
      Hashtbl.replace canonical_seen h ()
  in
  let schedules_rev = ref [] in
  let candidates = ref 0 in
  let dedup_hits = ref 0 in
  let sym_hits = ref 0 in
  let states = ref 0 in
  let layers_rev = ref [] in
  let violations_rev = ref [] in
  let bounded = ref false in
  (* Seed with the root configuration. *)
  let root_e, root_c = replay ~protocol ~opts ~inputs ~choices:menu.Menu.choices [||] in
  let root_key = node_key ~opts root_e root_c in
  Hashtbl.replace visited (Digest.string root_key) ();
  note_canonical (Digest.to_hex (Digest.string root_key));
  if opts.collect && not opts.dedup then schedules_rev := [ [||] ];
  incr states;
  let frontier = ref [| [||] |] in
  let d = ref 0 in
  (try
     while !d < opts.depth && Array.length !frontier > 0 do
       layers_rev := Array.length !frontier :: !layers_rev;
       let partial =
         opts.sharder.run ~jobs:opts.jobs ~merge:merge_partial
           ~init:empty_partial
           ~f:(expand_parent ~protocol ~opts ~valid ~inputs ~menu ~pmenus)
           !frontier
       in
       candidates := !candidates + partial.pcands;
       sym_hits := !sym_hits + partial.psym;
       let next_rev = ref [] in
       List.iter
         (fun c ->
           note_canonical c.canonical_hex;
           if opts.dedup && Hashtbl.mem visited c.digest then incr dedup_hits
           else begin
             if opts.dedup then Hashtbl.replace visited c.digest ();
             incr states;
             if opts.collect && not opts.dedup then
               schedules_rev := c.cschedule :: !schedules_rev;
             next_rev := c.cschedule :: !next_rev
           end)
         (List.rev partial.children_rev);
       violations_rev :=
         List.rev_append (List.rev partial.pviols_rev) !violations_rev;
       frontier := Array.of_list (List.rev !next_rev);
       incr d;
       (match partial.pviols_rev with [] -> () | _ :: _ -> raise Exit);
       match opts.max_states with
       | Some budget when !states >= budget ->
           bounded := true;
           raise Exit
       | _ -> ()
     done
   with Exit -> ());
  {
    stats =
      {
        root_index;
        inputs_bits = Array.copy inputs;
        group_order = List.length group;
        states = !states;
        candidates = !candidates;
        dedup_hits = !dedup_hits;
        symmetry_hits = !sym_hits;
        layers = List.rev !layers_rev;
        bounded = !bounded;
      };
    rviolations = List.rev !violations_rev;
    rcanonical =
      Hashtbl.fold (fun k () acc -> k :: acc) canonical_seen []
      |> List.sort String.compare;
    rschedules = List.rev !schedules_rev;
  }

let explore_root_dfs ~protocol ~opts ~valid ~menu ~root_index ~inputs =
  let group = root_group ~inputs ~corrupt:opts.corrupt ~pinned:opts.pinned opts.n in
  let pmenus =
    if opts.symmetry || opts.collect then permuted_menus ~opts ~group menu
    else []
  in
  (* digest -> shallowest depth seen; rediscovering a state at a smaller
     depth re-expands it so the depth budget is honoured exactly. *)
  let visited = Hashtbl.create 4096 in
  let canonical_seen = Hashtbl.create 4096 in
  let note_canonical h =
    if opts.collect && not (Hashtbl.mem canonical_seen h) then
      Hashtbl.replace canonical_seen h ()
  in
  let schedules_rev = ref [] in
  let candidates = ref 0 in
  let dedup_hits = ref 0 in
  let sym_hits = ref 0 in
  let states = ref 0 in
  let violations_rev = ref [] in
  let bounded = ref false in
  let root_e, root_c = replay ~protocol ~opts ~inputs ~choices:menu.Menu.choices [||] in
  let root_key = node_key ~opts root_e root_c in
  Hashtbl.replace visited (Digest.string root_key) 0;
  note_canonical (Digest.to_hex (Digest.string root_key));
  if opts.collect && not opts.dedup then schedules_rev := [ [||] ];
  incr states;
  let stack = ref [ [||] ] in
  (try
     let continue_ = ref true in
     while !continue_ do
       match !stack with
       | [] -> continue_ := false
       | schedule :: rest ->
           stack := rest;
           if Array.length schedule < opts.depth then begin
             let partial =
               expand_parent ~protocol ~opts ~valid ~inputs ~menu ~pmenus
                 schedule
             in
             candidates := !candidates + partial.pcands;
             sym_hits := !sym_hits + partial.psym;
             violations_rev :=
               List.rev_append (List.rev partial.pviols_rev) !violations_rev;
             (* [children_rev] is reverse menu order, so pushing in list
                order leaves the leftmost child on top of the stack —
                children are explored in menu order. *)
             List.iter
               (fun c ->
                 note_canonical c.canonical_hex;
                 if not opts.dedup then begin
                   incr states;
                   if opts.collect then
                     schedules_rev := c.cschedule :: !schedules_rev;
                   stack := c.cschedule :: !stack
                 end
                 else
                   let cdepth = Array.length c.cschedule in
                   match Hashtbl.find_opt visited c.digest with
                   | Some d0 when d0 <= cdepth -> incr dedup_hits
                   | known ->
                       (* Unseen, or rediscovered strictly shallower:
                          (re-)expand so the depth budget is honoured. *)
                       Hashtbl.replace visited c.digest cdepth;
                       if Option.is_none known then incr states;
                       stack := c.cschedule :: !stack)
               partial.children_rev;
             match opts.max_states with
             | Some budget when !states >= budget ->
                 bounded := true;
                 raise Exit
             | _ -> ()
           end
     done
   with Exit -> ());
  {
    stats =
      {
        root_index;
        inputs_bits = Array.copy inputs;
        group_order = List.length group;
        states = !states;
        candidates = !candidates;
        dedup_hits = !dedup_hits;
        symmetry_hits = !sym_hits;
        layers = [];
        bounded = !bounded;
      };
    rviolations = List.rev !violations_rev;
    rcanonical =
      Hashtbl.fold (fun k () acc -> k :: acc) canonical_seen []
      |> List.sort String.compare;
    rschedules = List.rev !schedules_rev;
  }

(* {2 Top level} *)

let root_vectors ~opts =
  match opts.inputs with
  | Vector v ->
      if Array.length v <> opts.n then
        invalid_arg "Explore.run: inputs vector length <> n";
      ([ Array.copy v ], 0)
  | Unanimous b -> ([ Array.make opts.n b ], 0)
  | Split -> ([ Array.init opts.n (fun i -> i land 1 = 0) ], 0)
  | All ->
      let all =
        List.init (1 lsl opts.n) (fun m ->
            Array.init opts.n (fun i -> (m lsr i) land 1 = 1))
      in
      if not opts.symmetry then (all, 0)
      else
        let perms =
          List.filter
            (fun pi ->
              let ok = ref true in
              Array.iteri
                (fun i pi_i ->
                  if i < opts.corrupt && pi_i >= opts.corrupt then
                    ok := false;
                  if i < opts.pinned && pi_i <> i then ok := false)
                pi;
              !ok)
            (all_perms opts.n)
        in
        let keep = List.filter (is_canonical_root perms) all in
        (keep, List.length all - List.length keep)

let run ~protocol ~valid opts =
  if opts.n <= 0 || opts.n > 16 then invalid_arg "Explore.run: n out of range";
  if opts.t < 0 || opts.t >= opts.n then invalid_arg "Explore.run: t out of range";
  if opts.corrupt > opts.t then
    invalid_arg "Explore.run: corrupt sources exceed the fault bound t";
  let menu =
    Menu.build ~n:opts.n ~t:opts.t ~family:opts.family ~corrupt:opts.corrupt
  in
  let roots, collapsed = root_vectors ~opts in
  let outcomes =
    List.mapi
      (fun root_index inputs ->
        let explore =
          match opts.order with
          | Bfs -> explore_root_bfs
          | Dfs -> explore_root_dfs
        in
        (root_index, inputs, explore ~protocol ~opts ~valid ~menu ~root_index ~inputs))
      roots
  in
  let violations =
    List.concat_map
      (fun (root_index, inputs, o) ->
        List.map
          (fun (kind, schedule, detail) ->
            {
              kind;
              root = root_index;
              root_inputs = Array.copy inputs;
              vdepth = Array.length schedule;
              schedule;
              detail;
            })
          o.rviolations)
      outcomes
    |> List.sort compare_violation
  in
  let violations_total = List.length violations in
  let cap = 25 in
  let violations = List.filteri (fun i _ -> i < cap) violations in
  let stats = List.map (fun (_, _, o) -> o.stats) outcomes in
  let canonical =
    if not opts.collect then []
    else
      List.concat_map (fun (_, _, o) -> o.rcanonical) outcomes
      |> List.sort_uniq String.compare
  in
  let schedules =
    if opts.collect && not opts.dedup then
      List.concat_map (fun (_, _, o) -> o.rschedules) outcomes
    else []
  in
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 stats in
  {
    protocol_name = protocol.Dsim.Protocol.name;
    opts;
    menu_size = Menu.size menu;
    roots = stats;
    roots_collapsed = collapsed;
    violations;
    violations_total;
    total_states = sum (fun s -> s.states);
    total_candidates = sum (fun s -> s.candidates);
    total_dedup_hits = sum (fun s -> s.dedup_hits);
    total_symmetry_hits = sum (fun s -> s.symmetry_hits);
    bounded = List.exists (fun (s : root_stats) -> s.bounded) stats;
    canonical;
    schedules;
  }

(* {2 Counterexample replay} *)

type replay_line = {
  window : int;
  choice : string;
  new_decisions : (int * bool) list;
}

type replay_report = {
  lines : replay_line list;
  final_decisions : (int * bool) list;
  conflict : bool;
  audit_violations : string list;
}

(* Deterministically re-execute a schedule with full event recording
   and the trace auditor: the independent second opinion on a violation
   found by the incremental checks. *)
let replay_schedule ~protocol ~opts ~inputs schedule =
  let menu =
    Menu.build ~n:opts.n ~t:opts.t ~family:opts.family ~corrupt:opts.corrupt
  in
  let opts = { opts with audit = true } in
  let e = make_root ~protocol ~opts ~inputs in
  let census = Array.make opts.n 0 in
  let lines = ref [] in
  Array.iteri
    (fun w ci ->
      let c = Menu.choice menu ci in
      let before = Array.init opts.n (fun p -> Dsim.Engine.output e p) in
      apply_choice ~protocol e census c;
      let news = ref [] in
      for p = opts.n - 1 downto 0 do
        match (before.(p), Dsim.Engine.output e p) with
        | None, Some v -> news := (p, v) :: !news
        | _ -> ()
      done;
      lines :=
        { window = w + 1; choice = Menu.choice_to_string c; new_decisions = !news }
        :: !lines)
    schedule;
  {
    lines = List.rev !lines;
    final_decisions = Dsim.Engine.decided_values e;
    conflict = Dsim.Engine.decision_conflict e;
    audit_violations =
      Lintkit.Trace_lint.audit ~decision_quorum:opts.quorum e
      |> List.map (fun v -> Format.asprintf "%a" Lintkit.Trace_lint.pp_violation v);
  }

(* Canonical state id a schedule lands on — the containment probe used
   by the exhaustiveness qcheck. *)
let schedule_state ~protocol ~opts ~inputs schedule =
  let menu =
    Menu.build ~n:opts.n ~t:opts.t ~family:opts.family ~corrupt:opts.corrupt
  in
  let group = root_group ~inputs ~corrupt:opts.corrupt ~pinned:opts.pinned opts.n in
  let pmenus =
    if opts.symmetry then permuted_menus ~opts ~group menu else []
  in
  let e, census = replay ~protocol ~opts ~inputs ~choices:menu.Menu.choices schedule in
  let raw = node_key ~opts e census in
  let canonical =
    List.fold_left
      (fun best pchoices ->
        let te, tc = replay ~protocol ~opts ~inputs ~choices:pchoices schedule in
        let k = node_key ~opts te tc in
        if String.compare k best < 0 then k else best)
      raw pmenus
  in
  Digest.to_hex (Digest.string canonical)
