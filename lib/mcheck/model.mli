(** The checkable-model registry: each entry packs a protocol together
    with the safety predicate the explorer enforces on it (decision
    quorum, validity rule), instantiability checks, and advisory
    resilience notes — so the CLI, the tests and the repro tables all
    drive one set of definitions.

    Mutants live here too: the same protocol with one threshold broken,
    for which the explorer must produce a minimal violating schedule —
    the negative control proving the checker can see bugs. *)

type packed = Packed : ('s, 'm) Dsim.Protocol.t -> packed

type t = {
  name : string;
  describe : string;
  mutant : bool;
  packed : packed;
  quorum : n:int -> t:int -> int;
  valid : inputs:bool array -> corrupt:int -> bool -> bool;
  feasible : n:int -> t:int -> (unit, string) result;
      (** instantiability only — resilience overruns are [notes], so
          the explorer can probe beyond-bound points deliberately *)
  notes : n:int -> t:int -> corrupt:int -> string list;
  pinned : int;
      (** protocol-distinguished pid prefix (an RBC origin) the
          symmetry reduction must fix pointwise *)
}

val all : t list
(** ben-or, bracha, lewko, rbc, and the mutants [ben-or!quorum-1],
    [bracha!quorum-t], [rbc!quorum-t]. *)

val names : string list
val find : string -> t option

val options : t -> n:int -> t:int -> Explore.options
(** {!Explore.default_options} specialized with the model's decision
    quorum and pinned prefix. *)

val run : t -> Explore.options -> Explore.result
(** Raises [Invalid_argument] when the model is not instantiable at
    the requested [(n, t)] (e.g. lewko needs [t < n / 6]). *)

val replay :
  t -> Explore.options -> inputs:bool array -> int array ->
  Explore.replay_report

val schedule_state :
  t -> Explore.options -> inputs:bool array -> int array -> string
