(* Machine-readable bench reports and the regression gate.

   A report is a flat map from fully-qualified Bechamel test name
   ("agreement/E1/window-apply-n18") to the OLS per-run estimates of
   the loaded measures: monotonic-clock nanoseconds and minor-heap
   words.  Reports are serialized as JSON (schema below) so
   `scripts/bench.sh` can archive one per day (BENCH_<date>.json) and
   diff any two runs; `compare` implements the CI gate against the
   checked-in baseline.

   Schema ("agreement-bench/1"):

     {
       "schema": "agreement-bench/1",
       "mode": "full" | "quick",
       "tests": {
         "<group/test>": {
           "monotonic-clock-ns": <float>,
           "minor-allocated-words": <float>
         },
         ...
       }
     }

   No JSON library is vendored in the build environment, so the tiny
   emitter/parser below handle exactly this subset (objects, strings,
   numbers) plus enough generality (arrays, literals) not to choke on
   hand-edited files. *)

type entry = { ns : float option; words : float option }
type t = { mode : string; tests : (string * entry) list }

(* ------------------------------------------------------------------ *)
(* Emission.                                                           *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit oc report =
  let tests =
    List.sort (fun (a, _) (b, _) -> String.compare a b) report.tests
  in
  Printf.fprintf oc "{\n  \"schema\": \"agreement-bench/1\",\n";
  Printf.fprintf oc "  \"mode\": \"%s\",\n" (escape report.mode);
  Printf.fprintf oc "  \"tests\": {";
  List.iteri
    (fun i (name, e) ->
      if i > 0 then Printf.fprintf oc ",";
      Printf.fprintf oc "\n    \"%s\": {" (escape name);
      let fields =
        List.filter_map
          (fun (k, v) -> Option.map (fun v -> (k, v)) v)
          [ ("monotonic-clock-ns", e.ns); ("minor-allocated-words", e.words) ]
      in
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Printf.fprintf oc ",";
          Printf.fprintf oc "\n      \"%s\": %.6f" k v)
        fields;
      Printf.fprintf oc "\n    }")
    tests;
  Printf.fprintf oc "\n  }\n}\n"

(* ------------------------------------------------------------------ *)
(* Parsing (restricted JSON).                                          *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json source =
  let pos = ref 0 in
  let len = String.length source in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some source.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when Char.equal c c' -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'; loop ()
          | Some '\\' -> advance (); Buffer.add_char b '\\'; loop ()
          | Some 'n' -> advance (); Buffer.add_char b '\n'; loop ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > len then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub source !pos 4) in
              pos := !pos + 4;
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else Buffer.add_char b '?';
              loop ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char b c;
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub source start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let literal word value =
    if
      !pos + String.length word <= len
      && String.equal (String.sub source !pos (String.length word)) word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, value) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, value) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let value = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (value :: acc)
            | Some ']' ->
                advance ();
                List.rev (value :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

let of_string source =
  match parse_json source with
  | exception Parse_error msg -> Error msg
  | Obj fields ->
      let mode =
        match List.assoc_opt "mode" fields with
        | Some (Str m) -> m
        | _ -> "full"
      in
      let entry_of = function
        | Obj measures ->
            let num key =
              match List.assoc_opt key measures with
              | Some (Num f) -> Some f
              | _ -> None
            in
            {
              ns = num "monotonic-clock-ns";
              words = num "minor-allocated-words";
            }
        | _ -> { ns = None; words = None }
      in
      let tests =
        match List.assoc_opt "tests" fields with
        | Some (Obj tests) -> List.map (fun (k, v) -> (k, entry_of v)) tests
        | _ -> []
      in
      (match List.assoc_opt "schema" fields with
      | Some (Str "agreement-bench/1") | None -> Ok { mode; tests }
      | Some (Str other) -> Error (Printf.sprintf "unknown schema %S" other)
      | Some _ -> Error "schema field is not a string")
  | _ -> Error "top-level JSON value is not an object"

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | source -> of_string source

(* ------------------------------------------------------------------ *)
(* The regression gate.                                                *)

type verdict = {
  test : string;
  metric : string;
  baseline : float;
  current : float;
  delta_pct : float;  (** positive = slower / more allocation *)
}

let pct_delta ~baseline ~current =
  if Float.abs baseline < 1e-9 then 0.0
  else (current -. baseline) /. baseline *. 100.0

(* Compare [current] against [baseline].  [gate_wall]/[gate_words]
   select which measures can fail the gate (quick smoke runs gate only
   on allocations, which are deterministic even under tiny quotas).
   The two measures get separate fences: per-run minor words are
   deterministic, so [words_threshold] can be tight, while wall time on
   a shared host jitters by tens of percent between identical runs, so
   [wall_threshold] is expected to be several times looser — it exists
   to catch gross slowdowns, not scheduler noise.  Tests present in
   only one report are skipped: the gate is about regressions in
   matched groups, not coverage drift. *)
let compare ~wall_threshold ~words_threshold ~gate_wall ~gate_words
    ~(baseline : t) (current : t) =
  let verdicts metric gate threshold project =
    if not gate then []
    else
      List.filter_map
        (fun (name, cur_entry) ->
          match List.assoc_opt name baseline.tests with
          | None -> None
          | Some base_entry -> (
              match (project base_entry, project cur_entry) with
              | Some b, Some c ->
                  let delta_pct = pct_delta ~baseline:b ~current:c in
                  if delta_pct > threshold then
                    Some
                      { test = name; metric; baseline = b; current = c; delta_pct }
                  else None
              | _ -> None))
        current.tests
  in
  verdicts "monotonic-clock-ns" gate_wall wall_threshold (fun e -> e.ns)
  @ verdicts "minor-allocated-words" gate_words words_threshold (fun e -> e.words)

let pp_verdict oc v =
  Printf.fprintf oc "REGRESSION %s %s: %.1f -> %.1f (%+.1f%%)\n" v.test v.metric
    v.baseline v.current v.delta_pct
