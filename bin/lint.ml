(* Determinism lint driver.

     lint [--root DIR] [--dir lib --dir bin ...] [--format human|json]
     lint --explain R3

   Scans every .ml under the selected trees, reports rule violations
   with file:line:col positions, and exits 1 when any are found (2 on
   parse/read errors), so it can gate CI via `dune build @lint`. *)

open Cmdliner

let run root dirs format explain =
  match explain with
  | Some id -> (
      match Lintkit.Rules.of_id id with
      | Some rule ->
          Format.printf "@[<v>%s — %s@,@,%s@]@."
            (Lintkit.Rules.id rule)
            (Lintkit.Rules.title rule)
            (Lintkit.Rules.describe rule);
          0
      | None ->
          Format.eprintf "unknown rule %S (expected R1..R6)@." id;
          2)
  | None ->
      let dirs = if dirs = [] then Lintkit.Driver.default_dirs else dirs in
      let report = Lintkit.Driver.scan ~dirs ~root () in
      (match format with
      | `Json -> Lintkit.Driver.render_json Format.std_formatter report
      | `Human -> Lintkit.Driver.render_human Format.std_formatter report);
      if report.Lintkit.Driver.errors <> [] then 2
      else if report.Lintkit.Driver.diagnostics <> [] then 1
      else 0

let root =
  Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR"
         ~doc:"Repository root to scan (paths in the report are relative to it).")

let dirs =
  Arg.(value & opt_all string [] & info [ "dir" ] ~docv:"DIR"
         ~doc:"Subtree to scan (repeatable; defaults to lib bin bench examples).")

let format =
  Arg.(value
       & opt (enum [ ("human", `Human); ("json", `Json) ]) `Human
       & info [ "format" ] ~docv:"FMT" ~doc:"Output format: human or json.")

let explain =
  Arg.(value & opt (some string) None & info [ "explain" ] ~docv:"RULE"
         ~doc:"Print the rationale for one rule (R1..R6) and exit.")

let cmd =
  let doc = "static determinism linter for the agreement reproduction" in
  Cmd.v (Cmd.info "lint" ~doc) Term.(const run $ root $ dirs $ format $ explain)

let () = exit (Cmd.eval' cmd)
