(* Determinism lint driver.

     lint [--root DIR] [--dir lib --dir bin ...] [--format human|json|sarif]
     lint --typed [--root DIR] [--baseline FILE]
     lint --cost [--root DIR] [--baseline FILE]
     lint --quorum [--root DIR] [--baseline FILE]
     lint --check FILE          # all layers on one standalone source
     lint --explain R8

   Layer 1 (default) parses every .ml under the selected trees and
   checks the syntactic rules R1-R6.  Layer 2 (--typed) reads the
   *.cmt typed trees of the built project and checks R7-R10; layer 3
   (--cost) reads the same trees and checks the hot-path cost rules
   R11-R14; layer 5 (--quorum) proves the quorum-threshold arithmetic
   R15-R18 symbolically for all n, t; all three cmt layers require
   `dune build` to have run.  Exit codes: 0 clean, 1 rule violations,
   2 read/parse/load errors — so any layer can gate CI via
   `dune build @lint` / `@lint-typed` / `@lint-cost` /
   `@lint-quorum`. *)

open Cmdliner

let render format report =
  match format with
  | `Json -> Lintkit.Driver.render_json Format.std_formatter report
  | `Sarif -> Lintkit.Driver.render_sarif Format.std_formatter report
  | `Baseline -> Lintkit.Driver.render_baseline Format.std_formatter report
  | `Human -> Lintkit.Driver.render_human Format.std_formatter report

let exit_code (report : Lintkit.Driver.report) =
  if report.errors <> [] then 2
  else if report.diagnostics <> [] then 1
  else 0

let with_baseline baseline report =
  match baseline with
  | None -> Ok report
  | Some file -> (
      match Lintkit.Driver.read_baseline file with
      | Error e -> Error (Printf.sprintf "baseline %s: %s" file e)
      | Ok entries ->
          let report, waived = Lintkit.Driver.apply_baseline entries report in
          if waived > 0 then
            Format.eprintf "lint: %d finding%s waived by baseline %s@." waived
              (if waived = 1 then "" else "s")
              file;
          Ok report)

(* All layers on a single standalone source file: the syntactic pass,
   then an in-memory typecheck for R7-R10 and R11-R14.  Used by
   fixtures and the check.sh exit-code matrix; no cmt files needed. *)
let check_file format file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error e ->
      Format.eprintf "lint: %s@." e;
      2
  | source ->
      let static =
        match Lintkit.Static_lint.lint_source ~path:file source with
        | Ok ds -> Ok ds
        | Error e -> Error e
      in
      let typed = Lintkit.Typed_lint.check_source ~path:file source in
      let cost = Lintkit.Cost_lint.check_source ~path:file source in
      let quorum = Lintkit.Quorum_lint.check_source ~path:file source in
      let diagnostics, errors =
        List.fold_left
          (fun (ds, es) -> function
            | Ok d -> (ds @ d, es)
            | Error e -> (ds, es @ [ e ]))
          ([], []) [ static; typed; cost; quorum ]
      in
      let report =
        {
          Lintkit.Driver.diagnostics =
            List.sort Lintkit.Static_lint.compare_diagnostic diagnostics;
          errors;
          files_scanned = 1;
        }
      in
      render format report;
      exit_code report

let run root dirs format explain typed cost quorum baseline check =
  match explain with
  | Some id -> (
      match Lintkit.Rules.of_id id with
      | Some rule ->
          Format.printf "@[<v>%s — %s (%s layer)@,@,%s@]@."
            (Lintkit.Rules.id rule)
            (Lintkit.Rules.title rule)
            (match Lintkit.Rules.layer rule with
            | `Static -> "syntactic"
            | `Typed -> "typed"
            | `Cost -> "cost"
            | `Quorum -> "quorum")
            (Lintkit.Rules.describe rule);
          0
      | None ->
          Format.eprintf "unknown rule %S (expected R1..R18)@." id;
          2)
  | None -> (
      match check with
      | Some file -> check_file format file
      | None ->
          let report =
            if quorum then
              Lintkit.Driver.scan_quorum
                ~dirs:(if dirs = [] then [ "lib" ] else dirs)
                ~root ()
            else if cost then
              Lintkit.Driver.scan_cost
                ~dirs:(if dirs = [] then [ "lib" ] else dirs)
                ~root ()
            else if typed then
              Lintkit.Driver.scan_typed
                ~dirs:(if dirs = [] then [ "lib" ] else dirs)
                ~root ()
            else
              let dirs =
                if dirs = [] then Lintkit.Driver.default_dirs else dirs
              in
              Lintkit.Driver.scan ~dirs ~root ()
          in
          (match with_baseline baseline report with
          | Error e ->
              Format.eprintf "lint: %s@." e;
              2
          | Ok report ->
              render format report;
              exit_code report))

let root =
  Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR"
         ~doc:"Repository root to scan (paths in the report are relative to it).")

let dirs =
  Arg.(value & opt_all string [] & info [ "dir" ] ~docv:"DIR"
         ~doc:"Subtree to scan (repeatable; defaults to lib bin bench examples, \
               or lib for --typed).")

let format =
  Arg.(value
       & opt
           (enum
              [
                ("human", `Human);
                ("json", `Json);
                ("sarif", `Sarif);
                ("baseline", `Baseline);
              ])
           `Human
       & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: human, json, sarif (2.1.0), or baseline \
                 (RULE<TAB>PATH<TAB>MESSAGE lines suitable for --baseline).")

let explain =
  Arg.(value & opt (some string) None & info [ "explain" ] ~docv:"RULE"
         ~doc:"Print the rationale for one rule (R1..R18) and exit.")

let typed =
  Arg.(value & flag & info [ "typed" ]
         ~doc:"Run the typed layer (R7..R10) over the *.cmt trees of the \
               built project instead of the syntactic layer. Requires a \
               prior $(b,dune build).")

let cost =
  Arg.(value & flag & info [ "cost" ]
         ~doc:"Run the hot-path cost layer (R11..R14) over the *.cmt trees \
               of the built project instead of the syntactic layer. \
               Requires a prior $(b,dune build).")

let quorum =
  Arg.(value & flag & info [ "quorum" ]
         ~doc:"Run the symbolic quorum-safety layer (R15..R18) over the \
               *.cmt trees of the built project instead of the syntactic \
               layer. Requires a prior $(b,dune build).")

let baseline =
  Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE"
         ~doc:"Waive findings listed in FILE (RULE<TAB>PATH<TAB>MESSAGE \
               lines, '#' comments). Seed one by redirecting \
               $(b,--format baseline) output to FILE.")

let check =
  Arg.(value & opt (some string) None & info [ "check" ] ~docv:"FILE"
         ~doc:"Lint one standalone source file with both layers (the typed \
               rules via an in-memory typecheck; no cmt files needed).")

let cmd =
  let doc =
    "determinism, hot-path & quorum-safety linter (syntactic + typed + \
     cost + quorum) for the agreement reproduction"
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const run $ root $ dirs $ format $ explain $ typed $ cost $ quorum
          $ baseline $ check)

let () = exit (Cmd.eval' cmd)
