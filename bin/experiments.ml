(* Reproduction driver: regenerates every experiment table from
   DESIGN.md's matrix.  `experiments --list` shows the ids;
   `experiments -e E2 -e E4` runs a subset; `--quick` shrinks sweeps. *)

let known_ids = Agreement.Repro.experiment_ids

let run_selected ~quick ~jobs ~ids ~markdown ~csv_dir =
  let scale = if quick then `Quick else `Full in
  let selected = Agreement.Repro.selected ~jobs ~scale ~ids () in
  if selected = [] then begin
    prerr_endline "no matching experiment ids; use --list";
    exit 1
  end;
  (match csv_dir with
  | None -> ()
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      List.iter
        (fun (id, table) ->
          let path = Filename.concat dir (id ^ ".csv") in
          let oc = open_out path in
          output_string oc (Stats.Table.to_csv table);
          close_out oc)
        selected);
  if markdown then print_string (Agreement.Repro.render_markdown selected)
  else
    List.iter
      (fun (id, table) ->
        Printf.printf "=== %s ===\n%s\n" id (Stats.Table.to_string table))
      selected

let list_ids () = List.iter print_endline known_ids

open Cmdliner

let quick =
  let doc = "Shrink seed counts and sweeps (for smoke runs)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let jobs =
  let doc =
    "Run seed sweeps on $(docv) domains.  Output is bit-identical for \
     every value; defaults to the recommended domain count."
  in
  Arg.(
    value
    & opt int (Agreement.Par_sweep.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"JOBS" ~doc)

let ids =
  let doc = "Run only this experiment id (repeatable); default: all." in
  Arg.(value & opt_all string [] & info [ "experiment"; "e" ] ~docv:"ID" ~doc)

let markdown =
  let doc = "Emit EXPERIMENTS.md-style markdown instead of plain tables." in
  Arg.(value & flag & info [ "markdown"; "m" ] ~doc)

let list_flag =
  let doc = "List experiment ids and exit." in
  Arg.(value & flag & info [ "list"; "l" ] ~doc)

let csv_dir =
  let doc = "Additionally write one CSV per experiment into this directory." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let main quick jobs ids markdown list_ csv_dir =
  if list_ then list_ids ()
  else run_selected ~quick ~jobs ~ids ~markdown ~csv_dir

let cmd =
  let doc =
    "Regenerate the evaluation of 'On the Complexity of Asynchronous Agreement \
     Against Powerful Adversaries' (Lewko & Lewko, PODC 2013)"
  in
  Cmd.v
    (Cmd.info "experiments" ~doc)
    Term.(const main $ quick $ jobs $ ids $ markdown $ list_flag $ csv_dir)

let () = exit (Cmd.eval cmd)
