(* Bounded exhaustive model checker over the dsim kernel.

     mcheck --protocol bracha --n 3 --t 1 --depth 5

   enumerates EVERY schedule over the chosen per-window adversary menu
   (window family x resets x corruption) up to the depth bound, runs
   each through the engine, and checks agreement, validity and the
   decision quorum on every reached configuration; --audit additionally
   replays the trace auditor on every candidate.

   Exit codes: 0 = explored clean, 1 = violations found, 2 = usage
   error / infeasible parameters.  JSON output carries no timings or
   job counts, so it is byte-identical across -j values — check.sh
   diffs -j 1 against -j 2. *)

let parse_inputs ~n = function
  | "all" -> Mcheck.Explore.All
  | "split" -> Mcheck.Explore.Split
  | "zeros" -> Mcheck.Explore.Unanimous false
  | "ones" -> Mcheck.Explore.Unanimous true
  | spec ->
      if String.length spec = n && String.for_all (fun c -> c = '0' || c = '1') spec
      then Mcheck.Explore.Vector (Array.init n (fun i -> spec.[i] = '1'))
      else
        invalid_arg
          (Printf.sprintf
             "inputs must be all|split|zeros|ones or a %d-char bitstring" n)

(* {2 Text report} *)

let pp_schedule_text model opts inputs ppf schedule =
  let menu =
    Mcheck.Menu.build ~n:opts.Mcheck.Explore.n ~t:opts.Mcheck.Explore.t
      ~family:opts.Mcheck.Explore.family ~corrupt:opts.Mcheck.Explore.corrupt
  in
  Array.iteri
    (fun w ci ->
      Format.fprintf ppf "    window %d: choice %d  %s@," (w + 1) ci
        (Mcheck.Menu.choice_to_string (Mcheck.Menu.choice menu ci)))
    schedule;
  let report = Mcheck.Model.replay model opts ~inputs schedule in
  List.iter
    (fun (p, v) ->
      Format.fprintf ppf "    decision: processor %d -> %d@," p
        (if v then 1 else 0))
    report.Mcheck.Explore.final_decisions;
  List.iter
    (fun line -> Format.fprintf ppf "    audit: %s@," line)
    report.Mcheck.Explore.audit_violations

let print_text model (opts : Mcheck.Explore.options)
    (r : Mcheck.Explore.result) =
  let open Format in
  printf "@[<v>model checker: %s  n=%d t=%d depth=%d@," r.protocol_name
    opts.n opts.t opts.depth;
  printf "menu: %s windows, %d corrupt source(s) -> %d choices/window@,"
    (match opts.family with `Uniform -> "uniform" | `Full -> "full")
    opts.corrupt r.menu_size;
  printf "symmetry: %s  dedup: %s  order: %s@,"
    (if opts.symmetry then "on" else "off")
    (if opts.dedup then "on" else "off")
    (match opts.order with Mcheck.Explore.Bfs -> "bfs" | Mcheck.Explore.Dfs -> "dfs");
  List.iter (fun note -> printf "note: %s@," note)
    (model.Mcheck.Model.notes ~n:opts.n ~t:opts.t ~corrupt:opts.corrupt);
  printf "roots: %d explored" (List.length r.roots);
  if r.roots_collapsed > 0 then
    printf " (+%d input vectors collapsed by symmetry)" r.roots_collapsed;
  printf "@,";
  List.iter
    (fun (s : Mcheck.Explore.root_stats) ->
      printf
        "  root %s |G|=%d: %d states, %d candidates, %d dedup hits, %d \
         symmetry hits%s%s@,"
        (Mcheck.Explore.inputs_string s.inputs_bits)
        s.group_order s.states s.candidates s.dedup_hits s.symmetry_hits
        (match s.layers with
        | [] -> ""
        | ls ->
            "  layers " ^ String.concat "/" (List.map string_of_int ls))
        (if s.bounded then "  [budget hit]" else ""))
    r.roots;
  printf "total: %d states (%d candidates, %d deduplicated, %d \
          symmetry-collapsed)%s@,"
    r.total_states r.total_candidates r.total_dedup_hits
    r.total_symmetry_hits
    (if r.bounded then "  [state budget hit: exploration incomplete]" else "");
  (match r.violations with
  | [] ->
      printf "result: no violations — every reachable configuration within \
              the bounds satisfies agreement, validity and the %d-sender \
              decision quorum@,"
        opts.quorum
  | v :: _ ->
      printf "result: %d violation(s)%s@," r.violations_total
        (if r.violations_total > List.length r.violations then
           Printf.sprintf " (showing %d)" (List.length r.violations)
         else "");
      printf "minimal counterexample: %s at depth %d, root inputs %s@,"
        (Mcheck.Explore.kind_id v.kind) v.vdepth
        (Mcheck.Explore.inputs_string v.root_inputs);
      printf "  %s@," v.detail;
      printf "  schedule [%s]:@,"
        (String.concat ";"
           (List.map string_of_int (Array.to_list v.schedule)));
      pp_schedule_text model opts v.root_inputs std_formatter v.schedule);
  printf "@]@."

(* {2 JSON report (hand-rolled, deterministic, no timings)} *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let print_json model (opts : Mcheck.Explore.options)
    (r : Mcheck.Explore.result) =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"schema\":\"agreement-mcheck/1\",\"protocol\":\"%s\","
    (json_escape r.protocol_name);
  add "\"n\":%d,\"t\":%d,\"depth\":%d,\"corrupt\":%d," opts.n opts.t opts.depth
    opts.corrupt;
  add "\"windows\":\"%s\",\"symmetry\":%b,\"dedup\":%b,\"quorum\":%d,"
    (match opts.family with `Uniform -> "uniform" | `Full -> "full")
    opts.symmetry opts.dedup opts.quorum;
  add "\"menu_size\":%d,\"bounded\":%b," r.menu_size r.bounded;
  add "\"roots_collapsed\":%d,\"roots\":[" r.roots_collapsed;
  List.iteri
    (fun i (s : Mcheck.Explore.root_stats) ->
      if i > 0 then add ",";
      add
        "{\"inputs\":\"%s\",\"group_order\":%d,\"states\":%d,\
         \"candidates\":%d,\"dedup_hits\":%d,\"symmetry_hits\":%d,\
         \"layers\":[%s],\"bounded\":%b}"
        (Mcheck.Explore.inputs_string s.inputs_bits)
        s.group_order s.states s.candidates s.dedup_hits s.symmetry_hits
        (String.concat "," (List.map string_of_int s.layers))
        s.bounded)
    r.roots;
  add "],\"totals\":{\"states\":%d,\"candidates\":%d,\"dedup_hits\":%d,\
       \"symmetry_hits\":%d},"
    r.total_states r.total_candidates r.total_dedup_hits r.total_symmetry_hits;
  add "\"violations_total\":%d,\"violations\":[" r.violations_total;
  List.iteri
    (fun i (v : Mcheck.Explore.violation) ->
      if i > 0 then add ",";
      add
        "{\"kind\":\"%s\",\"depth\":%d,\"inputs\":\"%s\",\"schedule\":[%s],\
         \"detail\":\"%s\"}"
        (Mcheck.Explore.kind_id v.kind)
        v.vdepth
        (Mcheck.Explore.inputs_string v.root_inputs)
        (String.concat "," (List.map string_of_int (Array.to_list v.schedule)))
        (json_escape v.detail))
    r.violations;
  add "]}";
  ignore model;
  print_string (Buffer.contents b);
  print_newline ()

(* {2 Replay mode} *)

let parse_schedule spec =
  String.split_on_char ';' spec
  |> List.filter (fun s -> String.length s > 0)
  |> List.map int_of_string
  |> Array.of_list

(* Deterministically re-execute one schedule with full event recording
   and the trace auditor; exit 1 iff it exhibits a violation.  This is
   how pinned counterexamples are re-validated from the command line. *)
let run_replay model (opts : Mcheck.Explore.options) inputs schedule =
  let menu =
    Mcheck.Menu.build ~n:opts.n ~t:opts.t ~family:opts.family
      ~corrupt:opts.corrupt
  in
  let bad =
    Array.exists (fun ci -> ci < 0 || ci >= Mcheck.Menu.size menu) schedule
  in
  if bad then (
    Printf.eprintf "mcheck: schedule index out of menu range [0, %d)\n"
      (Mcheck.Menu.size menu);
    2)
  else begin
    let report = Mcheck.Model.replay model opts ~inputs schedule in
    let open Format in
    printf "@[<v>replay: %s  n=%d t=%d  inputs %s  schedule [%s]@,"
      model.Mcheck.Model.name opts.n opts.t
      (Mcheck.Explore.inputs_string inputs)
      (String.concat ";" (List.map string_of_int (Array.to_list schedule)));
    List.iter
      (fun (l : Mcheck.Explore.replay_line) ->
        printf "  window %d: choice %s%s@," l.window l.choice
          (match l.new_decisions with
          | [] -> ""
          | ds ->
              "  ->  "
              ^ String.concat ", "
                  (List.map
                     (fun (p, v) ->
                       Printf.sprintf "processor %d decides %d" p
                         (if v then 1 else 0))
                     ds)))
      report.Mcheck.Explore.lines;
    printf "final decisions: %s@,"
      (match report.final_decisions with
      | [] -> "none"
      | ds ->
          String.concat ", "
            (List.map
               (fun (p, v) -> Printf.sprintf "%d=%d" p (if v then 1 else 0))
               ds));
    List.iter (fun a -> printf "audit: %s@," a) report.audit_violations;
    printf "verdict: %s@]@."
      (if report.conflict then "AGREEMENT VIOLATION"
       else if report.audit_violations <> [] then "AUDIT VIOLATION"
       else "consistent");
    if report.conflict || report.audit_violations <> [] then 1 else 0
  end

(* {2 Command} *)

let run protocol n t depth windows corrupt inputs_spec seed symmetry no_dedup
    audit order max_states jobs format replay =
  match Mcheck.Model.find protocol with
  | None ->
      Printf.eprintf "mcheck: unknown protocol %S; known: %s\n" protocol
        (String.concat ", " Mcheck.Model.names);
      2
  | Some model -> (
      match
        let family = windows in
        let inputs = parse_inputs ~n inputs_spec in
        let opts =
          {
            (Mcheck.Model.options model ~n ~t) with
            Mcheck.Explore.depth;
            family;
            corrupt;
            inputs;
            seed;
            symmetry;
            dedup = not no_dedup;
            audit;
            order =
              (match order with
              | "dfs" -> Mcheck.Explore.Dfs
              | _ -> Mcheck.Explore.Bfs);
            max_states;
            jobs;
            sharder = Agreement.Mcheck_bridge.sharder;
          }
        in
        (match model.Mcheck.Model.feasible ~n ~t with
        | Ok () -> ()
        | Error e -> invalid_arg e);
        match replay with
        | Some spec ->
            let inputs_vec =
              match inputs with
              | Mcheck.Explore.Vector v -> v
              | Mcheck.Explore.Unanimous b -> Array.make n b
              | Mcheck.Explore.Split -> Array.init n (fun i -> i land 1 = 0)
              | Mcheck.Explore.All ->
                  invalid_arg
                    "--replay needs a concrete --inputs (bitstring, zeros, \
                     ones or split)"
            in
            `Replay (run_replay model opts inputs_vec (parse_schedule spec))
        | None -> `Explored (opts, Mcheck.Model.run model opts)
      with
      | `Replay code -> code
      | `Explored (opts, r) ->
          (match format with
          | "json" -> print_json model opts r
          | _ -> print_text model opts r);
          if r.Mcheck.Explore.violations_total > 0 then 1 else 0
      | exception Invalid_argument msg ->
          Printf.eprintf "mcheck: %s\n" msg;
          2
      | exception Failure msg ->
          Printf.eprintf "mcheck: %s\n" msg;
          2)

open Cmdliner

let protocol_arg =
  Arg.(
    value
    & opt string "bracha"
    & info [ "protocol"; "p" ] ~docv:"NAME"
        ~doc:
          "Model to check: ben-or, bracha, lewko, rbc, or a mutant \
           (ben-or!quorum-1, bracha!quorum-t, rbc!quorum-t).")

let n_arg = Arg.(value & opt int 3 & info [ "n" ] ~doc:"Number of processors (<= 5 is tractable).")
let t_arg = Arg.(value & opt int 1 & info [ "t" ] ~doc:"Fault bound (silenced set / resets per window).")
let depth_arg = Arg.(value & opt int 5 & info [ "depth"; "d" ] ~doc:"Schedule length bound (windows).")

let windows_arg =
  let parse = function
    | "uniform" -> Ok `Uniform
    | "full" -> Ok `Full
    | other -> Error (`Msg ("unknown window family: " ^ other))
  in
  let print ppf f =
    Format.pp_print_string ppf
      (match f with `Uniform -> "uniform" | `Full -> "full")
  in
  Arg.(
    value
    & opt (conv (parse, print)) `Uniform
    & info [ "windows"; "w" ] ~docv:"FAMILY"
        ~doc:
          "Window family: uniform (shared receive set [n] minus at most t \
           silenced senders; exhaustive to depth 5+) or full (independent \
           Definition-1 receive sets per processor; exhaustive to depth \
           ~3).")

let corrupt_arg =
  Arg.(
    value & opt int 0
    & info [ "corrupt"; "c" ] ~docv:"COUNT"
        ~doc:
          "Byzantine sources (processors 0..COUNT-1): the menu then also \
           enumerates every per-destination payload rewrite of their fresh \
           messages, including equivocation.  Must be <= t.")

let inputs_arg =
  Arg.(
    value & opt string "all"
    & info [ "inputs"; "i" ]
        ~doc:"all|split|zeros|ones or an explicit bitstring.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed"; "s" ] ~doc:"Root seed (shared coin stream).")

let symmetry_arg =
  Arg.(
    value
    & opt bool true
    & info [ "symmetry" ] ~docv:"BOOL"
        ~doc:"Canonicalize states up to pid permutations fixing the root.")

let no_dedup_arg =
  Arg.(
    value & flag
    & info [ "no-dedup" ]
        ~doc:
          "Disable configuration deduplication: enumerate the full schedule \
           tree (the brute-force reference mode the tests diff against).")

let audit_arg =
  Arg.(
    value & flag
    & info [ "audit" ]
        ~doc:
          "Additionally run the full trace auditor (FIFO, depth, \
           provenance, window, quorum invariants) on every candidate.")

let order_arg =
  Arg.(
    value & opt string "bfs"
    & info [ "order" ] ~docv:"ORDER"
        ~doc:
          "bfs (layered; stops at the first violating depth, so the \
           reported counterexample is minimal) or dfs (explicit stack).")

let max_states_arg =
  Arg.(
    value
    & opt (some int) (Some 1_000_000)
    & info [ "max-states" ] ~docv:"N"
        ~doc:"Per-root state budget; exploration reports when it is hit.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"JOBS"
        ~doc:
          "Domains used to expand BFS frontiers.  Results are \
           bit-identical for every value.")

let format_arg =
  Arg.(
    value & opt string "text"
    & info [ "format"; "f" ] ~docv:"FMT" ~doc:"text or json.")

let replay_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "replay" ] ~docv:"SCHEDULE"
        ~doc:
          "Instead of exploring, deterministically replay one schedule \
           (semicolon-separated menu indices, e.g. \"3;3;0\") against the \
           --inputs vector, print the per-window timeline, and run the \
           full trace auditor.  Exit 1 iff the execution violates an \
           invariant.")

let cmd =
  let doc =
    "bounded exhaustive model checking of agreement protocols under the \
     Definition-1 adversary"
  in
  Cmd.v (Cmd.info "mcheck" ~doc)
    Term.(
      const run $ protocol_arg $ n_arg $ t_arg $ depth_arg $ windows_arg
      $ corrupt_arg $ inputs_arg $ seed_arg $ symmetry_arg $ no_dedup_arg
      $ audit_arg $ order_arg $ max_states_arg $ jobs_arg $ format_arg
      $ replay_arg)

(* Accept the spelled-out [--n 3 --t 1] used throughout the docs:
   cmdliner only knows one-char names as short options. *)
let argv =
  Array.map
    (function "--n" -> "-n" | "--t" -> "-t" | a -> a)
    Sys.argv

let () = exit (Cmd.eval' ~argv cmd)
