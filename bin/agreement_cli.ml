(* Single-execution driver: run one protocol under one adversary and
   print the outcome (optionally the full event trace).  Useful for
   poking at the system interactively:

     agreement_cli --protocol lewko --adversary balancing -n 13 -t 2 \
       --inputs split --seed 7 --trace

   With --sweep COUNT the same (protocol, adversary) pair runs over
   COUNT consecutive seeds instead and the aggregate ensemble result is
   printed; -j spreads the sweep over domains without changing any
   number in the output. *)

type protocol_choice = Lewko | Lewko_det | Ben_or | Bracha | Bracha_validated

let parse_inputs ~n = function
  | "zeros" -> Array.make n false
  | "ones" -> Array.make n true
  | "split" -> Array.init n (fun i -> i mod 2 = 0)
  | spec ->
      if String.length spec = n then
        Array.init n (fun i -> spec.[i] = '1')
      else
        invalid_arg
          (Printf.sprintf "inputs must be zeros|ones|split or a %d-char bitstring" n)

let windowed_adversary name seed : ('s, 'm) Adversary.Strategy.windowed =
  match name with
  | "benign" -> Adversary.Benign.windowed ()
  | "silence" -> Adversary.Silence.last_t
  | "balancing" -> Adversary.Split_vote.windowed ()
  | "balance+reset" -> Adversary.Split_vote.windowed_with_resets ()
  | "split-brain" -> Adversary.Split_brain.windowed ()
  | "reset-rotating" -> Adversary.Reset_storm.rotating ()
  | "reset-random" -> Adversary.Reset_storm.random ~seed ()
  | "reset-targeted" -> Adversary.Reset_storm.target_undecided ()
  | "lookahead" -> Adversary.Lookahead.windowed ~samples:8 ~horizon:4 ~seed ()
  | other -> invalid_arg ("unknown windowed adversary: " ^ other)

let stepwise_adversary name seed : ('s, 'm) Adversary.Strategy.stepwise =
  match name with
  | "benign" -> Adversary.Benign.lockstep ()
  | "random" -> Adversary.Benign.random_fair ~seed ~drop_probability:0.3 ()
  | "balancing" -> Adversary.Split_vote.stepwise ()
  | "echo-chamber" -> Adversary.Echo_chamber.stepwise ()
  | "crash-start" -> Adversary.Crash.at_start ~crash:[ 0 ]
  | "crash-late" -> Adversary.Crash.before_decision ()
  | "byz-flip" -> Adversary.Byzantine.lockstep ~corrupt:[ 0 ] ~flavour:Adversary.Byzantine.Flip ()
  | "byz-equivocate" ->
      Adversary.Byzantine.lockstep ~corrupt:[ 0 ] ~flavour:Adversary.Byzantine.Equivocate ()
  | other -> invalid_arg ("unknown stepwise adversary: " ^ other)

let print_outcome name outcome =
  Format.printf "@[<v>protocol: %s@,%a@]@." name Dsim.Runner.pp_outcome outcome

let print_trace config =
  List.iter
    (fun event -> Format.printf "  %a@." Dsim.Trace.pp_event event)
    (Dsim.Trace.events (Dsim.Engine.trace config))

let export_trace config = function
  | None -> ()
  | Some path ->
      Dsim.Trace_export.write_file ~path (Dsim.Engine.trace config);
      Format.printf "trace written to %s@." path

let run_windowed protocol ~n ~t ~inputs ~seed ~adversary ~max_windows ~trace ~json =
  let record_events = trace || json <> None in
  let config =
    Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs ~seed ~record_events ()
  in
  let outcome =
    Dsim.Runner.run_windows config
      ~strategy:(windowed_adversary adversary seed)
      ~max_windows ~stop:`All_decided
  in
  if trace then print_trace config;
  export_trace config json;
  print_outcome protocol.Dsim.Protocol.name outcome

let run_stepwise protocol ~n ~t ~inputs ~seed ~adversary ~max_steps ~trace ~json =
  let record_events = trace || json <> None in
  let config =
    Dsim.Engine.init ~protocol ~n ~fault_bound:t ~inputs ~seed ~record_events ()
  in
  let outcome =
    Dsim.Runner.run_steps config
      ~strategy:(stepwise_adversary adversary seed)
      ~max_steps ~stop:`All_decided
  in
  if trace then print_trace config;
  export_trace config json;
  print_outcome protocol.Dsim.Protocol.name outcome

let sweep_spec ~n ~t ~inputs_spec ~budget =
  {
    Agreement.Ensemble.n;
    t;
    inputs = (fun _seed -> parse_inputs ~n inputs_spec);
    max_windows = budget;
    max_steps = budget * 1000;
    stop = `All_decided;
  }

let sweep_windowed protocol ~jobs ~adversary ~spec ~seeds =
  let result =
    Agreement.Ensemble.run_windowed ~jobs ~protocol
      ~strategy:(windowed_adversary adversary)
      ~spec ~seeds ()
  in
  Format.printf "@[<v>protocol: %s@,%a@]@." protocol.Dsim.Protocol.name
    Agreement.Ensemble.pp_result result

let sweep_stepwise protocol ~jobs ~adversary ~spec ~seeds =
  let result =
    Agreement.Ensemble.run_stepwise ~jobs ~protocol
      ~strategy:(stepwise_adversary adversary)
      ~spec ~seeds ()
  in
  Format.printf "@[<v>protocol: %s@,%a@]@." protocol.Dsim.Protocol.name
    Agreement.Ensemble.pp_result result

let run_sweep protocol_name ~jobs ~adversary ~n ~t ~inputs_spec ~seed ~count
    ~budget =
  let spec = sweep_spec ~n ~t ~inputs_spec ~budget in
  let seeds = List.init count (fun i -> seed + i) in
  match protocol_name with
  | Lewko ->
      sweep_windowed (Protocols.Lewko_variant.protocol ()) ~jobs ~adversary ~spec
        ~seeds
  | Lewko_det ->
      sweep_windowed
        (Protocols.Lewko_variant.protocol ~coin:(fun _ -> false) ())
        ~jobs ~adversary ~spec ~seeds
  | Ben_or ->
      sweep_stepwise (Protocols.Ben_or.protocol ()) ~jobs ~adversary ~spec ~seeds
  | Bracha ->
      sweep_stepwise (Protocols.Bracha.protocol ()) ~jobs ~adversary ~spec ~seeds
  | Bracha_validated ->
      sweep_stepwise
        (Protocols.Bracha.protocol ~validated:true ())
        ~jobs ~adversary ~spec ~seeds

let run_single protocol_name adversary n t inputs_spec seed budget trace json =
  let inputs = parse_inputs ~n inputs_spec in
  match protocol_name with
  | Lewko ->
      run_windowed (Protocols.Lewko_variant.protocol ()) ~n ~t ~inputs ~seed ~adversary
        ~max_windows:budget ~trace ~json
  | Lewko_det ->
      run_windowed
        (Protocols.Lewko_variant.protocol ~coin:(fun _ -> false) ())
        ~n ~t ~inputs ~seed ~adversary ~max_windows:budget ~trace ~json
  | Ben_or ->
      run_stepwise (Protocols.Ben_or.protocol ()) ~n ~t ~inputs ~seed ~adversary
        ~max_steps:(budget * 1000) ~trace ~json
  | Bracha ->
      run_stepwise (Protocols.Bracha.protocol ()) ~n ~t ~inputs ~seed ~adversary
        ~max_steps:(budget * 1000) ~trace ~json
  | Bracha_validated ->
      run_stepwise
        (Protocols.Bracha.protocol ~validated:true ())
        ~n ~t ~inputs ~seed ~adversary ~max_steps:(budget * 1000) ~trace ~json

open Cmdliner

let protocol =
  let parse = function
    | "lewko" | "variant" -> Ok Lewko
    | "lewko-det" | "deterministic" -> Ok Lewko_det
    | "ben-or" | "benor" -> Ok Ben_or
    | "bracha" -> Ok Bracha
    | "bracha-validated" -> Ok Bracha_validated
    | other -> Error (`Msg ("unknown protocol: " ^ other))
  in
  let print ppf = function
    | Lewko -> Format.pp_print_string ppf "lewko"
    | Lewko_det -> Format.pp_print_string ppf "lewko-det"
    | Ben_or -> Format.pp_print_string ppf "ben-or"
    | Bracha -> Format.pp_print_string ppf "bracha"
    | Bracha_validated -> Format.pp_print_string ppf "bracha-validated"
  in
  Arg.(
    value
    & opt (conv (parse, print)) Lewko
    & info [ "protocol"; "p" ] ~docv:"NAME"
        ~doc:
          "Protocol: lewko or lewko-det (windowed); ben-or, bracha or \
           bracha-validated (stepwise).")

let adversary =
  Arg.(
    value & opt string "benign"
    & info [ "adversary"; "a" ] ~docv:"NAME"
        ~doc:
          "Windowed: benign|silence|balancing|balance+reset|split-brain|reset-rotating|reset-random|reset-targeted|lookahead. \
           Stepwise: benign|random|balancing|echo-chamber|crash-start|crash-late|byz-flip|byz-equivocate.")

let n_arg = Arg.(value & opt int 13 & info [ "n" ] ~doc:"Number of processors.")
let t_arg = Arg.(value & opt int 2 & info [ "t" ] ~doc:"Fault bound.")

let inputs_arg =
  Arg.(
    value & opt string "split"
    & info [ "inputs"; "i" ] ~doc:"zeros|ones|split or an explicit bitstring.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed"; "s" ] ~doc:"Root seed.")

let budget_arg =
  Arg.(
    value & opt int 10_000
    & info [ "budget"; "b" ] ~doc:"Max windows (stepwise runs use 1000x steps).")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the full event trace.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Write the trace as JSON Lines to FILE.")

let sweep_arg =
  Arg.(
    value & opt int 0
    & info [ "sweep" ] ~docv:"COUNT"
        ~doc:
          "Instead of one run, sweep COUNT consecutive seeds (starting at \
           --seed) and print the aggregate result; --trace/--json are \
           ignored in this mode.")

let jobs_arg =
  Arg.(
    value
    & opt int (Agreement.Par_sweep.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"JOBS"
        ~doc:
          "Domains used by --sweep.  The aggregate is bit-identical for \
           every value.")

let run protocol_name adversary n t inputs_spec seed budget trace json sweep
    jobs =
  if sweep > 0 then
    run_sweep protocol_name ~jobs ~adversary ~n ~t ~inputs_spec ~seed
      ~count:sweep ~budget
  else run_single protocol_name adversary n t inputs_spec seed budget trace json

let cmd =
  let doc = "Run one agreement execution under a chosen adversary" in
  Cmd.v
    (Cmd.info "agreement_cli" ~doc)
    Term.(
      const run $ protocol $ adversary $ n_arg $ t_arg $ inputs_arg $ seed_arg
      $ budget_arg $ trace_arg $ json_arg $ sweep_arg $ jobs_arg)

let () = exit (Cmd.eval cmd)
