#!/usr/bin/env sh
# The full CI gate: build everything, run the test suite (which
# includes both lint layers), then prove the parallel sweep engine's
# determinism contract end to end — the quick experiment tables at
# -j 2 must be byte-identical to -j 1.
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest

echo "check: differential -j smoke (experiments --quick)"
out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT
dune exec bin/experiments.exe -- --quick -j 1 -m > "$out_dir/j1.md"
dune exec bin/experiments.exe -- --quick -j 2 -m > "$out_dir/j2.md"
if cmp -s "$out_dir/j1.md" "$out_dir/j2.md"; then
  echo "check: -j 1 and -j 2 outputs are byte-identical"
else
  echo "check: FAIL — parallel sweep output differs from sequential" >&2
  diff "$out_dir/j1.md" "$out_dir/j2.md" >&2 || true
  exit 1
fi
echo "check: all green"
