#!/usr/bin/env sh
# The full CI gate: build everything, run the test suite (which
# includes all lint layers), re-run the typed and cost analyzers to
# emit SARIF reports, exercise the lint CLI's exit-code contract,
# then prove the parallel sweep engine's determinism contract end to
# end — the quick experiment tables at -j 2 must be byte-identical to
# -j 1.
set -eu
cd "$(dirname "$0")/.."

dune build @all
dune runtest

echo "check: typed lint (R7-R10) SARIF report"
dune build @lint-typed
# Exit 1 here means a non-baselined finding slipped past the alias
# (e.g. someone passed a stale --baseline); exit 2 means the cmt load
# itself failed.  Either way the gate fails, but we keep the SARIF
# file around for inspection.
if dune exec bin/lint.exe -- --typed --format sarif > lint.sarif; then
  echo "check: typed tree clean, SARIF written to lint.sarif"
else
  echo "check: FAIL — typed lint reported findings or errors (see lint.sarif)" >&2
  exit 1
fi

echo "check: cost lint (R11-R14) SARIF report"
dune build @lint-cost
# Same contract as the typed stage: the baseline waives the justified
# inherently-O(n)-per-window findings; anything beyond it fails the
# gate but leaves the SARIF file behind.
if dune exec bin/lint.exe -- --cost --baseline lint/cost-baseline.tsv \
     --format sarif > lint-cost.sarif; then
  echo "check: hot path clean mod baseline, SARIF written to lint-cost.sarif"
else
  echo "check: FAIL — cost lint reported findings beyond lint/cost-baseline.tsv (see lint-cost.sarif)" >&2
  exit 1
fi

echo "check: quorum lint (R15-R18) SARIF report"
dune build @lint-quorum
# The alias scope excludes lib/mcheck (intentional negative-control
# mutants, gated below); the baseline is wired and deliberately empty,
# so any finding here is a real threshold-arithmetic regression.
quorum_dirs="--dir lib/adversary --dir lib/core --dir lib/dsim \
  --dir lib/lowerbound --dir lib/prng --dir lib/protocols \
  --dir lib/shmem --dir lib/stats --dir lib/syncsim"
# shellcheck disable=SC2086
if dune exec bin/lint.exe -- --quorum $quorum_dirs \
     --baseline lint/quorum-baseline.tsv --format sarif > lint-quorum.sarif
then
  echo "check: quorum arithmetic proven (empty baseline), SARIF written to lint-quorum.sarif"
else
  echo "check: FAIL — quorum lint reported findings or errors (see lint-quorum.sarif)" >&2
  exit 1
fi

echo "check: quorum lint negative controls (!quorum mutants must be flagged)"
# The full-tree scan (lib/ including lib/mcheck) must report exactly
# the three registry mutants — each caught by all of R16 (quorum
# intersection), R17 (fault-set-met decide gate) and R18 (registry
# resilience bound) — and nothing else.  A mutant that scans clean
# means the analyzer lost precision; an extra finding means a sound
# protocol regressed.
quorum_json=$(mktemp)
set +e
dune exec bin/lint.exe -- --quorum --root . --format json > "$quorum_json"
quorum_exit=$?
set -e
if [ "$quorum_exit" -ne 1 ]; then
  echo "check: FAIL — full-tree --quorum exited $quorum_exit (want 1: mutant findings)" >&2
  rm -f "$quorum_json"
  exit 1
fi
for mutant in 'ben-or!quorum-1' 'bracha!quorum-t' 'rbc!quorum-t'; do
  for rule in R16 R17 R18; do
    if ! grep -q "\"rule\":\"$rule\",\"message\":\"$mutant:" "$quorum_json"; then
      echo "check: FAIL — $mutant not flagged by $rule in full-tree --quorum scan" >&2
      rm -f "$quorum_json"
      exit 1
    fi
  done
done
if grep -o '"path":"[^"]*"' "$quorum_json" | grep -v '"path":"lib/mcheck/model.ml"' \
     | grep -q .; then
  echo "check: FAIL — full-tree --quorum flagged a file other than the mutant registry" >&2
  grep -o '"path":"[^"]*"' "$quorum_json" | sort -u >&2
  rm -f "$quorum_json"
  exit 1
fi
rm -f "$quorum_json"
echo "check: all three !quorum mutants flagged (R16+R17+R18), sound tree clean"

echo "check: lint CLI exit-code matrix (all layers)"
fixture_dir=$(mktemp -d)
# Clean file: no determinism-rule violations at either layer.
cat > "$fixture_dir/clean.ml" <<'EOF'
let double x = 2 * x
let total xs = List.fold_left ( + ) 0 xs
EOF
# Violating file: ambient randomness (syntactic R1) plus a polymorphic
# compare at a non-immediate type (typed R7 under a lib/dsim path).
static_bad_dir=$(mktemp -d)
mkdir -p "$static_bad_dir/lib/dsim"
cat > "$static_bad_dir/lib/dsim/bad.ml" <<'EOF'
let flip () = Random.bool ()
let same (a : int list) b = a = b
EOF
# Unparsable file: both layers must report a scan error, not a finding.
cat > "$fixture_dir/broken.ml" <<'EOF'
let unclosed = (
EOF
expect() {
  want=$1; shift
  set +e
  "$@" > /dev/null 2>&1
  got=$?
  set -e
  if [ "$got" -ne "$want" ]; then
    echo "check: FAIL — expected exit $want from: $*, got $got" >&2
    exit 1
  fi
}
lint="_build/default/bin/lint.exe"
# Static layer: 0 clean / 1 violation / 2 error.
expect 0 "$lint" --check "$fixture_dir/clean.ml"
expect 1 "$lint" --check "$static_bad_dir/lib/dsim/bad.ml"
expect 2 "$lint" --check "$fixture_dir/broken.ml"
# Typed layer: --check runs every layer on a standalone file, so the
# same fixtures pin the typed codes too (the R7 hit needs the
# lib/dsim-scoped path); a cmt-less directory is the typed error case.
expect 1 "$lint" --check "$static_bad_dir/lib/dsim/bad.ml" --format sarif
expect 2 "$lint" --typed --root "$fixture_dir"
# Cost layer: a quorum re-scan reachable from a Protocol.t transition
# field (R13) under a protocol-scoped path; a cmt-less directory is
# the cost error case.
cost_bad_dir=$(mktemp -d)
mkdir -p "$cost_bad_dir/lib/protocols"
cat > "$cost_bad_dir/lib/protocols/rescan.ml" <<'EOF'
module Int_map = Map.Make (Int)

module Protocol = struct
  type t = { on_deliver : bool Int_map.t -> int }
end

let handle tallies =
  Int_map.fold (fun _ v acc -> if v then acc + 1 else acc) tallies 0

let _p = { Protocol.on_deliver = handle }
EOF
expect 1 "$lint" --check "$cost_bad_dir/lib/protocols/rescan.ml"
expect 2 "$lint" --cost --root "$fixture_dir"
# Quorum layer: a hot recursive function whose every site is O(1) —
# R11's blind spot, caught by R15 (the layer's cost rule) via --check;
# the full-tree scan exits 1 on the intentional mutants, the
# alias-scoped scan exits 0, and a cmt-less root is the error case.
quorum_bad_dir=$(mktemp -d)
mkdir -p "$quorum_bad_dir/lib/protocols"
cat > "$quorum_bad_dir/lib/protocols/drain.ml" <<'EOF'
module Protocol = struct
  type t = { on_deliver : int list -> int }
end

let rec drain = function [] -> 0 | _ :: rest -> 1 + drain rest
let _p = { Protocol.on_deliver = drain }
EOF
expect 1 "$lint" --check "$quorum_bad_dir/lib/protocols/drain.ml"
expect 1 "$lint" --quorum --root .
# shellcheck disable=SC2086
expect 0 "$lint" --quorum --root . $quorum_dirs \
  --baseline lint/quorum-baseline.tsv
expect 2 "$lint" --quorum --root "$fixture_dir"
rm -rf "$fixture_dir" "$static_bad_dir" "$cost_bad_dir" "$quorum_bad_dir"
echo "check: exit-code matrix ok (0 clean / 1 findings / 2 errors)"

echo "check: bench exit-code matrix + --quick regression smoke"
# scripts/bench.sh mirrors the lint CLI contract: 0 clean, 1 a named
# group regressed past the threshold, 2 usage/infrastructure error.
expect 2 ./scripts/bench.sh --no-such-flag
expect 2 ./scripts/bench.sh --quick --baseline /nonexistent/BASELINE.json
expect 2 ./scripts/bench.sh --quick --scaling
bench_out=$(mktemp)
if ./scripts/bench.sh --quick --out "$bench_out"; then
  echo "check: quick bench within threshold of bench/BASELINE.json"
else
  echo "check: FAIL — kernel hot-path groups regressed vs bench/BASELINE.json" >&2
  rm -f "$bench_out"
  exit 1
fi
rm -f "$bench_out"

echo "check: n-sweep scaling gate (allocation fence only)"
# The lazy-broadcast rewrite's headline claim — uniform sends allocate
# O(1) at emission — is pinned by the scaling group's minor-words
# baseline; a fan-out regression shows up here as an allocation jump.
bench_out=$(mktemp)
if ./scripts/bench.sh --scaling --out "$bench_out"; then
  echo "check: scaling group within allocation fence of bench/BASELINE.json"
else
  echo "check: FAIL — scaling group regressed vs bench/BASELINE.json" >&2
  rm -f "$bench_out"
  exit 1
fi
rm -f "$bench_out"

echo "check: streamed-trace sink differential"
# The ring/chunked sinks must reproduce the Memory sink's event
# fingerprint bit-for-bit.  Gated exit-code style on the kernel-diff
# qcheck differential plus the pinned lewko run through a chunked sink
# (cases 7..8) and the trace suite's sink unit tests — alcotest exits
# 0 on success, 1 on any failure.
tests="_build/default/test/test_main.exe"
expect 0 "$tests" test kernel-diff 7..8
expect 0 "$tests" test trace
echo "check: trace sinks fingerprint-identical across Memory/Ring/Chunks"

echo "check: --mcheck smoke (exhaustive model checker)"
# bin/mcheck.exe mirrors the lint CLI contract: 0 = every reachable
# configuration within the bounds is safe, 1 = a violation (the mutants
# MUST hit this), 2 = usage or infeasible instance.
mcheck="_build/default/bin/mcheck.exe"
expect 0 "$mcheck" --protocol bracha -n 3 -t 1 --depth 3
expect 1 "$mcheck" --protocol ben-or!quorum-1 -n 3 -t 1 --depth 2 --corrupt 1
expect 1 "$mcheck" --protocol rbc!quorum-t -n 3 -t 1 --depth 3 --corrupt 1
expect 2 "$mcheck" --protocol no-such-protocol -n 3 -t 1
expect 2 "$mcheck" --protocol lewko -n 3 -t 1   # infeasible: lewko needs t < n/6
expect 2 "$mcheck" --protocol bracha -n 3 -t 1 --corrupt 2  # corrupt > t
echo "check: mcheck exit-code matrix ok (0 safe / 1 violation / 2 error)"

# The pinned deep counterexample: the all-quorums-at-t Bracha mutant
# must conflict on the 9-window equivocation replay, and sound Bracha
# must survive the identical schedule.
expect 1 "$mcheck" --protocol bracha!quorum-t -n 3 -t 1 --corrupt 1 \
  --inputs 010 --replay "3;3;3;3;3;3;3;3;3"
expect 0 "$mcheck" --protocol bracha -n 3 -t 1 --corrupt 1 \
  --inputs 010 --replay "3;3;3;3;3;3;3;3;3"
echo "check: pinned bracha!quorum-t counterexample replays deterministically"

# Frontier sharding determinism: the explorer's JSON report (which
# includes the canonical state census and the minimal counterexample)
# must be byte-identical across -j 1 / -j 2.
mcheck_dir=$(mktemp -d)
"$mcheck" --protocol rbc!quorum-t -n 3 -t 1 --depth 3 --corrupt 1 \
  --jobs 1 --format json > "$mcheck_dir/j1.json" || true
"$mcheck" --protocol rbc!quorum-t -n 3 -t 1 --depth 3 --corrupt 1 \
  --jobs 2 --format json > "$mcheck_dir/j2.json" || true
if cmp -s "$mcheck_dir/j1.json" "$mcheck_dir/j2.json"; then
  echo "check: mcheck -j 1 and -j 2 reports are byte-identical"
else
  echo "check: FAIL — mcheck frontier sharding is not deterministic" >&2
  diff "$mcheck_dir/j1.json" "$mcheck_dir/j2.json" >&2 || true
  rm -rf "$mcheck_dir"
  exit 1
fi
rm -rf "$mcheck_dir"

echo "check: differential -j smoke (experiments --quick)"
out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT
dune exec bin/experiments.exe -- --quick -j 1 -m > "$out_dir/j1.md"
dune exec bin/experiments.exe -- --quick -j 2 -m > "$out_dir/j2.md"
if cmp -s "$out_dir/j1.md" "$out_dir/j2.md"; then
  echo "check: -j 1 and -j 2 outputs are byte-identical"
else
  echo "check: FAIL — parallel sweep output differs from sequential" >&2
  diff "$out_dir/j1.md" "$out_dir/j2.md" >&2 || true
  exit 1
fi
echo "check: all green"
