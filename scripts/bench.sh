#!/usr/bin/env sh
# Benchmark driver and regression gate (see docs/BENCHMARKS.md).
#
#   scripts/bench.sh                  full run, gate vs bench/BASELINE.json,
#                                     report archived as BENCH_<date>.json
#   scripts/bench.sh --quick          CI smoke: kernel groups only, tiny
#                                     quota, gate on allocations only
#   scripts/bench.sh --scaling        n-sweep scaling group only (the
#                                     docs/BENCHMARKS.md "Scaling
#                                     curves" tables, including the
#                                     window-make-uniform sweep and the
#                                     windows-batched / windows-unbatched
#                                     twin whose word gap fences the
#                                     batched applier), tiny quota, gate
#                                     on allocations only — wall time
#                                     at n = 10^4 is too host-dependent
#                                     to fence
#   scripts/bench.sh --record         full run, NO gate; rewrites
#                                     bench/BASELINE.json (use after an
#                                     intentional perf change, commit the
#                                     new baseline with it)
#   scripts/bench.sh --out FILE       override the report path
#   scripts/bench.sh --baseline FILE  override the baseline path
#   scripts/bench.sh --threshold PCT  override the 15% allocation fence
#   scripts/bench.sh --wall-threshold PCT
#                                     override the wall-time fence
#                                     (default 3x the allocation fence:
#                                     wall jitters 20-30% between
#                                     identical runs on a shared host,
#                                     so it only flags gross slowdowns)
#
# Exit codes (mirrors the lint CLI contract): 0 clean, 1 a named group
# regressed past the threshold, 2 usage/infrastructure error (bad flag,
# missing/undreadable baseline, build failure).
set -eu
cd "$(dirname "$0")/.."

quick=0
scaling=0
record=0
out=""
baseline="bench/BASELINE.json"
threshold="15"
wall_threshold=""

while [ $# -gt 0 ]; do
  case "$1" in
    --quick) quick=1 ;;
    --scaling) scaling=1 ;;
    --record) record=1 ;;
    --out)
      [ $# -ge 2 ] || { echo "bench.sh: --out needs a path" >&2; exit 2; }
      out=$2; shift ;;
    --baseline)
      [ $# -ge 2 ] || { echo "bench.sh: --baseline needs a path" >&2; exit 2; }
      baseline=$2; shift ;;
    --threshold)
      [ $# -ge 2 ] || { echo "bench.sh: --threshold needs a percentage" >&2; exit 2; }
      threshold=$2; shift ;;
    --wall-threshold)
      [ $# -ge 2 ] || { echo "bench.sh: --wall-threshold needs a percentage" >&2; exit 2; }
      wall_threshold=$2; shift ;;
    *) echo "bench.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
  shift
done

if ! dune build bench/main.exe 2>&2; then
  echo "bench.sh: build failed" >&2
  exit 2
fi

[ -n "$out" ] || out="BENCH_$(date +%Y-%m-%d).json"

# The quick smoke pins the kernel hot-path groups the tentpole perf
# work targets: window application (E1), the stepwise delivery loops
# (E3), the ensemble sweep (par-sweep) and the model checker's node
# expansion loop (modelcheck).  The scaling mode runs the n-sweep
# group instead; both reuse the binary's --quick so only the
# deterministic allocation fence gates.
if [ "$quick" = 1 ] && [ "$scaling" = 1 ]; then
  echo "bench.sh: --quick and --scaling are exclusive modes" >&2
  exit 2
fi
quick_args=""
if [ "$quick" = 1 ]; then
  quick_args="--quick --only E1 --only E3 --only par-sweep --only modelcheck"
elif [ "$scaling" = 1 ]; then
  quick_args="--quick --only scaling"
fi

bench="_build/default/bench/main.exe"

if [ "$record" = 1 ]; then
  "$bench" --json "$baseline" $quick_args
  echo "bench.sh: baseline recorded at $baseline (commit it)"
  exit 0
fi

if [ ! -r "$baseline" ]; then
  echo "bench.sh: baseline $baseline missing or unreadable; run scripts/bench.sh --record first" >&2
  exit 2
fi

wall_args=""
[ -z "$wall_threshold" ] || wall_args="--wall-threshold $wall_threshold"

set +e
"$bench" --json "$out" --against "$baseline" --threshold "$threshold" $wall_args $quick_args
status=$?
set -e
case "$status" in
  0) echo "bench.sh: ok — report at $out" ;;
  1) echo "bench.sh: FAIL — regression vs $baseline (report at $out)" >&2 ;;
  *) echo "bench.sh: error while benchmarking" >&2 ;;
esac
exit "$status"
