#!/usr/bin/env python3
"""Splice full-scale experiment tables into EXPERIMENTS.md.

Usage: scripts/splice_experiments.py RESULTS.md [RESULTS2.md ...]

Each RESULTS file is `experiments.exe --markdown` output: `### <ID>`
headers followed by a fenced code block.  Every `<!-- TABLE:<ID> -->`
placeholder in EXPERIMENTS.md is replaced in place by that section's
block (later files override earlier ones for the same id).
"""
import re
import sys

sections = {}
for path in sys.argv[1:]:
    cur = None
    for line in open(path):
        m = re.match(r"^### (\S+)", line)
        if m:
            cur = m.group(1)
            sections[cur] = ""
        elif cur is not None:
            sections[cur] += line

target = "EXPERIMENTS.md"
out = []
missing = []
for line in open(target):
    m = re.match(r"^<!-- TABLE:(\S+) -->$", line.strip())
    if m:
        if m.group(1) in sections:
            out.append(sections[m.group(1)].strip("\n") + "\n")
        else:
            missing.append(m.group(1))
            out.append(line)
    else:
        out.append(line)

open(target, "w").write("".join(out))
if missing:
    print("unresolved placeholders:", ", ".join(missing))
else:
    print("all placeholders resolved")
