#!/usr/bin/env sh
# Run both determinism lint layers: the syntactic pass (@lint, R1-R6)
# and the cmt-based typed pass (@lint-typed, R7-R10; builds first so
# the *.cmt trees exist).  Then re-emit both reports for tooling —
# JSON by default; extra arguments are forwarded to both CLI
# invocations instead (e.g. `scripts/lint.sh --format sarif` or
# `--baseline lint-baseline.tsv`).
set -eu
cd "$(dirname "$0")/.."
dune build @lint
dune build @lint-typed
if [ "$#" -eq 0 ]; then
  dune exec bin/lint.exe -- --format json
  exec dune exec bin/lint.exe -- --typed --format json
else
  dune exec bin/lint.exe -- "$@"
  exec dune exec bin/lint.exe -- --typed "$@"
fi
