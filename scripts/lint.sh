#!/usr/bin/env sh
# Run the determinism lint pass: the @lint alias fails the build on any
# violation, then the CLI re-emits the report as JSON for tooling.
set -eu
cd "$(dirname "$0")/.."
dune build @lint
exec dune exec bin/lint.exe -- --format json "$@"
