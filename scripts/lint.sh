#!/usr/bin/env sh
# Run the three code-lint layers: the syntactic pass (@lint, R1-R6),
# the cmt-based typed pass (@lint-typed, R7-R10; builds first so the
# *.cmt trees exist), and the cmt-based cost pass (@lint-cost,
# R11-R14, gated by lint/cost-baseline.tsv).  Then re-emit the reports
# for tooling — JSON by default; extra arguments are forwarded to the
# CLI invocations instead (e.g. `scripts/lint.sh --format sarif`).
# The cost invocation always carries the checked-in baseline.
set -eu
cd "$(dirname "$0")/.."
dune build @lint
dune build @lint-typed
dune build @lint-cost
if [ "$#" -eq 0 ]; then
  dune exec bin/lint.exe -- --format json
  dune exec bin/lint.exe -- --typed --format json
  exec dune exec bin/lint.exe -- --cost --baseline lint/cost-baseline.tsv --format json
else
  dune exec bin/lint.exe -- "$@"
  dune exec bin/lint.exe -- --typed "$@"
  exec dune exec bin/lint.exe -- --cost --baseline lint/cost-baseline.tsv "$@"
fi
