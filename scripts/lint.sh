#!/usr/bin/env sh
# Run the four code-lint layers: the syntactic pass (@lint, R1-R6),
# the cmt-based typed pass (@lint-typed, R7-R10; builds first so the
# *.cmt trees exist), the cmt-based cost pass (@lint-cost, R11-R14,
# gated by lint/cost-baseline.tsv), and the symbolic quorum pass
# (@lint-quorum, R15-R18, gated by the deliberately empty
# lint/quorum-baseline.tsv and scoped away from the intentional
# lib/mcheck negative-control mutants).  Then re-emit the reports for
# tooling — JSON by default; extra arguments are forwarded to the CLI
# invocations instead (e.g. `scripts/lint.sh --format sarif`).
# The cost and quorum invocations always carry their checked-in
# baselines.
set -eu
cd "$(dirname "$0")/.."
dune build @lint
dune build @lint-typed
dune build @lint-cost
dune build @lint-quorum
quorum_dirs="--dir lib/adversary --dir lib/core --dir lib/dsim \
  --dir lib/lowerbound --dir lib/prng --dir lib/protocols \
  --dir lib/shmem --dir lib/stats --dir lib/syncsim"
if [ "$#" -eq 0 ]; then
  dune exec bin/lint.exe -- --format json
  dune exec bin/lint.exe -- --typed --format json
  dune exec bin/lint.exe -- --cost --baseline lint/cost-baseline.tsv --format json
  # shellcheck disable=SC2086
  exec dune exec bin/lint.exe -- --quorum $quorum_dirs \
    --baseline lint/quorum-baseline.tsv --format json
else
  dune exec bin/lint.exe -- "$@"
  dune exec bin/lint.exe -- --typed "$@"
  dune exec bin/lint.exe -- --cost --baseline lint/cost-baseline.tsv "$@"
  # shellcheck disable=SC2086
  exec dune exec bin/lint.exe -- --quorum $quorum_dirs \
    --baseline lint/quorum-baseline.tsv "$@"
fi
